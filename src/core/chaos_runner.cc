#include "core/chaos_runner.h"

#include <algorithm>

#include "file/fsck.h"

namespace rhodos::core {

using replication::GroupId;

ChaosRunner::ChaosRunner(DistributedFileFacility* facility,
                         ChaosWorkloadConfig config)
    : f_(facility), config_(config), rng_(config.seed) {}

std::vector<std::uint8_t> ChaosRunner::OpPattern(std::uint64_t op) const {
  std::vector<std::uint8_t> v(config_.region_bytes);
  // Cheap per-op pattern: mixes the workload seed and the op ordinal so two
  // runs with the same seed write byte-identical data.
  const std::uint64_t base = config_.seed * 1000003ULL + op * 2654435761ULL;
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(base + i * 131ULL);
  }
  return v;
}

Result<ChaosReport> ChaosRunner::Run(sim::FaultPlan plan) {
  auto& repl = f_->replication();
  auto& files = f_->files();
  auto& txns = f_->transactions();

  // --- Setup (before any fault fires) -------------------------------------
  machine_ = f_->MachineCount() > 0 ? &f_->machine(0) : &f_->AddMachine();

  const std::uint32_t replicas = std::min<std::uint32_t>(
      std::max<std::uint32_t>(1, config_.replicas_per_group),
      static_cast<std::uint32_t>(f_->disks().DiskCount()));
  groups_.clear();
  for (std::uint32_t i = 0; i < config_.replica_groups; ++i) {
    // Transaction-typed replicas write through, so a replica ack means the
    // bytes are on the platter — the durability the invariants check.
    RHODOS_ASSIGN_OR_RETURN(
        GroupId g, repl.CreateReplicated(file::ServiceType::kTransaction,
                                         replicas, config_.region_bytes));
    groups_.push_back(g);
  }
  group_oracle_.assign(groups_.size(), {});

  txn_files_.clear();
  for (std::uint32_t i = 0; i < config_.txn_files; ++i) {
    RHODOS_ASSIGN_OR_RETURN(FileId id,
                            files.Create(file::ServiceType::kTransaction,
                                         config_.region_bytes));
    RHODOS_RETURN_IF_ERROR(files.SetLockLevel(id, file::LockLevel::kPage));
    txn_files_.push_back(id);
  }
  txn_oracle_.assign(txn_files_.size(), {});

  agent_files_.clear();
  agent_file_ids_.clear();
  for (std::uint32_t i = 0; i < config_.agent_files; ++i) {
    RHODOS_ASSIGN_OR_RETURN(
        ObjectDescriptor od,
        machine_->file_agent->Create(
            naming::ByName("chaos-" + std::to_string(config_.seed) + "-" +
                           std::to_string(i)),
            file::ServiceType::kBasic, config_.region_bytes));
    RHODOS_ASSIGN_OR_RETURN(FileId id, machine_->file_agent->FileOf(od));
    agent_files_.push_back(od);
    agent_file_ids_.push_back(id);
  }
  agent_oracle_.assign(agent_files_.size(), {});

  // --- The storm -----------------------------------------------------------
  f_->bus().SetFaultPlan(std::move(plan));

  ChaosReport report;
  for (int op = 0; op < config_.operations; ++op) {
    f_->clock().Advance(config_.time_per_op);
    f_->bus().PumpFaults();   // scheduled faults fire as time passes
    f_->recovery().Tick();    // ...and the control loop reacts
    ++report.operations;

    if (config_.service_crash_at_op >= 0 &&
        op == config_.service_crash_at_op) {
      // Mid-storm total server loss: every file service and every disk
      // crashes together, then recovery replays the snapshot journal and
      // the intention log before the workload resumes.
      f_->CrashServers();
      (void)f_->RecoverServers();
    }

    // With max_images == 0 the extra step kinds never roll and the rng
    // stream is byte-identical to the pre-snapshot runner.
    const std::uint64_t kind =
        config_.max_images > 0 ? rng_.Below(12) : rng_.Below(10);
    if (kind < 3 && !groups_.empty()) {
      StepReplicatedWrite(rng_.Below(groups_.size()), op, report);
    } else if (kind < 5 && !groups_.empty()) {
      StepReplicatedRead(rng_.Below(groups_.size()), report);
    } else if (kind < 7 && !txn_files_.empty()) {
      StepTxnCommit(rng_.Below(txn_files_.size()), op, report);
    } else if (kind < 9 && !agent_files_.empty()) {
      StepAgentWrite(rng_.Below(agent_files_.size()), op, report);
    } else if (kind < 10 && !agent_files_.empty()) {
      StepAgentRead(rng_.Below(agent_files_.size()), report);
    } else if (kind < 11 && !agent_files_.empty()) {
      StepCapture(rng_.Below(agent_files_.size()), op, report);
    } else if (kind < 12) {
      StepImageOp(op, report);
    }
  }

  report.failovers = repl.stats().failovers;
  report.read_repairs = repl.stats().read_repairs;
  report.token_replays = repl.stats().token_replays;
  report.auto_repairs = f_->recovery().stats().auto_repairs;
  report.disk_failures_seen = f_->recovery().stats().disk_failures_detected;
  report.disk_recoveries_seen =
      f_->recovery().stats().disk_recoveries_detected;

  HealAndRecover(report);
  Verify(report);
  report.completed = true;
  report.metrics_json = f_->DumpStats(/*json=*/true);
  (void)txns;
  return report;
}

void ChaosRunner::StepReplicatedWrite(std::size_t target, std::uint64_t op,
                                      ChaosReport& report) {
  ++report.replicated_writes;
  auto data = OpPattern(op);
  // Each op carries a unique deterministic idempotency token, and a failed
  // attempt gets one client-style retry with the SAME token — the retried
  // exchange whose first delivery committed must replay the recorded ack,
  // not apply the bytes as a second version (the double-apply regression).
  const std::uint64_t token = op + 1;
  auto n = f_->replication().Write(groups_[target], 0, data, token);
  if (!n.ok() && n.error().code == ErrorCode::kUnavailable) {
    n = f_->replication().Write(groups_[target], 0, data, token);
  }
  Oracle& o = group_oracle_[target];
  if (n.ok()) {
    o.data = std::move(data);
    o.known = true;
  } else {
    // A failed quorum write may still have landed on some replicas (the
    // roll-forward); nobody can say which bytes are current until the next
    // successful write re-establishes truth.
    o.known = false;
    ++report.op_failures;
  }
}

void ChaosRunner::StepReplicatedRead(std::size_t target,
                                     ChaosReport& report) {
  ++report.replicated_reads;
  const Oracle& o = group_oracle_[target];
  std::vector<std::uint8_t> out(config_.region_bytes);
  auto n = f_->replication().Read(groups_[target], 0, out);
  if (!n.ok()) {
    ++report.op_failures;
    return;
  }
  if (n->stale) {
    // Explicitly-flagged degraded serve: old bytes are legal here, and the
    // flag is exactly what keeps them from masquerading as current.
    ++report.stale_reads;
    return;
  }
  if (o.known && (n->bytes != o.data.size() ||
                  !std::equal(o.data.begin(), o.data.end(), out.begin()))) {
    ++report.corrupt_reads;  // I1: success with wrong bytes
  }
}

void ChaosRunner::StepTxnCommit(std::size_t target, std::uint64_t op,
                                ChaosReport& report) {
  auto& txns = f_->transactions();
  auto t = txns.Begin(ProcessId{1000 + target});
  if (!t.ok()) {
    ++report.op_failures;
    return;
  }
  auto data = OpPattern(op);
  auto w = txns.TWrite(*t, txn_files_[target], 0, data);
  if (!w.ok()) {
    (void)txns.Abort(*t);
    ++report.txn_aborts;
    ++report.op_failures;
    return;
  }
  const std::uint64_t commits_before = txns.stats().commits;
  Status end = txns.End(*t);
  // End() may fail AFTER the commit point (a disk died mid-apply); the
  // stats tell the truth: if the commit counted, recovery must redo it and
  // the oracle expects the new bytes (I2).
  if (txns.stats().commits > commits_before) {
    ++report.txn_commits;
    txn_oracle_[target].data = std::move(data);
    txn_oracle_[target].known = true;
    if (!end.ok()) ++report.op_failures;
  } else {
    ++report.txn_aborts;
    ++report.op_failures;
  }
}

void ChaosRunner::StepAgentWrite(std::size_t target, std::uint64_t op,
                                 ChaosReport& report) {
  ++report.agent_writes;
  auto data = OpPattern(op);
  auto n = machine_->file_agent->Pwrite(agent_files_[target], 0, data);
  Oracle& o = agent_oracle_[target];
  if (n.ok() && *n == data.size()) {
    o.data = std::move(data);
    o.known = true;
  } else {
    o.known = false;
    ++report.op_failures;
  }
}

void ChaosRunner::StepAgentRead(std::size_t target, ChaosReport& report) {
  ++report.agent_reads;
  const Oracle& o = agent_oracle_[target];
  std::vector<std::uint8_t> out(config_.region_bytes);
  auto n = machine_->file_agent->Pread(agent_files_[target], 0, out);
  if (!n.ok()) {
    ++report.op_failures;
    return;
  }
  if (o.known && (*n != o.data.size() ||
                  !std::equal(o.data.begin(), o.data.end(), out.begin()))) {
    ++report.corrupt_reads;
  }
}

void ChaosRunner::StepCapture(std::size_t source, std::uint64_t op,
                              ChaosReport& report) {
  if (images_.size() >= config_.max_images) {
    StepImageOp(op, report);
    return;
  }
  const bool clone = rng_.Below(2) == 1;
  auto id = clone ? machine_->file_agent->Clone(agent_files_[source])
                  : machine_->file_agent->Snapshot(agent_files_[source]);
  if (!id.ok()) {
    ++report.op_failures;
    return;
  }
  auto od = machine_->file_agent->OpenById(*id);
  if (!od.ok()) {
    ++report.op_failures;
    return;
  }
  ImageState img;
  img.od = *od;
  img.id = *id;
  img.writable = clone;
  // The capture flushed the agent's dirty blocks first, so the image holds
  // exactly the source's last confirmed bytes (unknown stays unknown).
  img.oracle = agent_oracle_[source];
  images_.push_back(std::move(img));
  if (clone) {
    ++report.clones_taken;
  } else {
    ++report.snapshots_taken;
  }
}

void ChaosRunner::StepImageOp(std::uint64_t op, ChaosReport& report) {
  if (images_.empty()) return;
  ImageState& img = images_[rng_.Below(images_.size())];
  if (img.writable && rng_.Below(2) == 1) {
    ++report.clone_writes;
    auto data = OpPattern(op);
    auto n = machine_->file_agent->Pwrite(img.od, 0, data);
    if (n.ok() && *n == data.size()) {
      img.oracle.data = std::move(data);
      img.oracle.known = true;
    } else {
      img.oracle.known = false;
      ++report.op_failures;
    }
    return;
  }
  ++report.image_reads;
  std::vector<std::uint8_t> out(config_.region_bytes);
  auto n = machine_->file_agent->Pread(img.od, 0, out);
  if (!n.ok()) {
    ++report.op_failures;
    return;
  }
  if (img.oracle.known &&
      (*n != img.oracle.data.size() ||
       !std::equal(img.oracle.data.begin(), img.oracle.data.end(),
                   out.begin()))) {
    // A clone is an ordinary mutable file (I1); a snapshot that drifted
    // from its capture image is the dedicated I5 violation.
    if (img.writable) {
      ++report.corrupt_reads;
    } else {
      ++report.snapshot_mismatches;
    }
  }
}

void ChaosRunner::HealAndRecover(ChaosReport& report) {
  // End of the storm: cancel pending faults, lift partitions, restart every
  // dead disk, replay the intention log, repair every stale replica.
  f_->bus().ClearFaults();
  for (const auto& disk : f_->disks().disks()) {
    if (disk->partitioned()) (void)f_->HealDisk(disk->id());
    if (disk->crashed()) (void)f_->RecoverDisk(disk->id());
  }
  (void)f_->transactions().Recover();
  f_->recovery().Tick();  // observe the recoveries (auto-repairs fire here)
  (void)f_->recovery().RepairAllStale();
  (void)machine_->file_agent->FlushAll();
  (void)f_->files().FlushAll();
  report.auto_repairs = f_->recovery().stats().auto_repairs;
}

void ChaosRunner::Verify(ChaosReport& report) {
  auto& repl = f_->replication();
  auto& files = f_->files();

  // I3: convergence, and I1 re-checked against the post-recovery volume.
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    auto converged = repl.Converged(groups_[i]);
    if (!converged.ok() || !*converged) {
      ++report.unconverged_groups;
      continue;
    }
    const Oracle& o = group_oracle_[i];
    if (!o.known) continue;
    // Every single replica must hold the oracle bytes, not just read-one.
    auto replicas = repl.Replicas(groups_[i]);
    if (!replicas.ok()) {
      ++report.replica_mismatches;
      continue;
    }
    for (const auto& r : *replicas) {
      std::vector<std::uint8_t> out(o.data.size());
      auto n = files.Read(r.file, 0, out);
      if (!n.ok() || *n != o.data.size() || out != o.data) {
        ++report.replica_mismatches;
      }
    }
  }

  // I2: committed transaction data is durable.
  for (std::size_t i = 0; i < txn_files_.size(); ++i) {
    const Oracle& o = txn_oracle_[i];
    if (!o.known) continue;
    std::vector<std::uint8_t> out(o.data.size());
    auto n = files.Read(txn_files_[i], 0, out);
    if (!n.ok() || *n != o.data.size() || out != o.data) {
      ++report.committed_data_lost;
    }
  }

  // Agent files: last confirmed write must be readable through the agent.
  for (std::size_t i = 0; i < agent_files_.size(); ++i) {
    const Oracle& o = agent_oracle_[i];
    if (!o.known) continue;
    std::vector<std::uint8_t> out(o.data.size());
    auto n = machine_->file_agent->Pread(agent_files_[i], 0, out);
    if (!n.ok() || *n != o.data.size() || out != o.data) {
      ++report.committed_data_lost;
    }
  }

  // I5: snapshot immutability survives the final recovery; a clone's last
  // confirmed bytes are ordinary committed data (I2).
  for (const ImageState& img : images_) {
    if (!img.oracle.known) continue;
    std::vector<std::uint8_t> out(img.oracle.data.size());
    auto n = machine_->file_agent->Pread(img.od, 0, out);
    if (!n.ok() || *n != img.oracle.data.size() || out != img.oracle.data) {
      if (img.writable) {
        ++report.committed_data_lost;
      } else {
        ++report.snapshot_mismatches;
      }
    }
  }

  // I4: structural audit over every file the chaos touched — including the
  // images, whose shared runs exercise the refcount reconciliation.
  std::vector<FileId> audit;
  for (GroupId g : groups_) {
    auto replicas = repl.Replicas(g);
    if (replicas.ok()) {
      for (const auto& r : *replicas) audit.push_back(r.file);
    }
  }
  audit.insert(audit.end(), txn_files_.begin(), txn_files_.end());
  audit.insert(audit.end(), agent_file_ids_.begin(), agent_file_ids_.end());
  for (const ImageState& img : images_) audit.push_back(img.id);
  const file::AuditReport fsck = file::AuditFiles(files, audit);
  report.fsck_issues = fsck.issues.size();
  report.fsck_clean = fsck.clean();
  report.fsck_refcounts_checked = fsck.refcounts_checked;
  report.fsck_shared_blocks = fsck.shared_blocks;
}

std::string ChaosReport::Summary() const {
  std::string s;
  s += "ops=" + std::to_string(operations);
  s += " failed=" + std::to_string(op_failures);
  s += " repl_w=" + std::to_string(replicated_writes);
  s += " repl_r=" + std::to_string(replicated_reads);
  s += " commits=" + std::to_string(txn_commits);
  s += " aborts=" + std::to_string(txn_aborts);
  s += " agent_w=" + std::to_string(agent_writes);
  s += " agent_r=" + std::to_string(agent_reads);
  s += " stale_r=" + std::to_string(stale_reads);
  if (snapshots_taken + clones_taken + image_reads + clone_writes > 0) {
    s += " snaps=" + std::to_string(snapshots_taken);
    s += " clones=" + std::to_string(clones_taken);
    s += " clone_w=" + std::to_string(clone_writes);
    s += " image_r=" + std::to_string(image_reads);
  }
  s += " | failovers=" + std::to_string(failovers);
  s += " auto_repairs=" + std::to_string(auto_repairs);
  s += " read_repairs=" + std::to_string(read_repairs);
  s += " token_replays=" + std::to_string(token_replays);
  s += " disk_down=" + std::to_string(disk_failures_seen);
  s += " disk_up=" + std::to_string(disk_recoveries_seen);
  s += " | corrupt=" + std::to_string(corrupt_reads);
  s += " lost=" + std::to_string(committed_data_lost);
  s += " mismatch=" + std::to_string(replica_mismatches);
  s += " unconverged=" + std::to_string(unconverged_groups);
  s += " snap_bad=" + std::to_string(snapshot_mismatches);
  s += " fsck=" + (fsck_clean ? std::string("clean")
                              : std::to_string(fsck_issues) + " issues");
  s += " refcounts=" + std::to_string(fsck_refcounts_checked);
  s += ok() ? " [OK]" : " [VIOLATED]";
  return s;
}

}  // namespace rhodos::core
