#include "core/facility.h"

#include <cstdlib>

namespace rhodos::core {

DistributedFileFacility::DistributedFileFacility(FacilityConfig config)
    : config_(config), bus_(&clock_, config.network), disks_(config.placement) {
  for (std::uint32_t i = 0; i < config_.disk_count; ++i) {
    disk::DiskServerConfig dc;
    dc.geometry = i < config_.per_disk_geometry.size()
                      ? config_.per_disk_geometry[i]
                      : config_.geometry;
    dc.cache_capacity_tracks = config_.disk_cache_tracks;
    dc.track_readahead = config_.track_readahead;
    dc.fault_seed = 100 + i;
    disks_.AddDisk(dc, &clock_);
  }
  const std::uint32_t file_shards =
      config_.sharding.file_shards == 0 ? 1 : config_.sharding.file_shards;
  router_ = std::make_unique<placement::ShardRouter>(
      file_shards, config_.sharding.virtual_nodes);
  // Every shard serves from the SAME disk registry: ownership is a routing
  // convention, so a failover target can load any file's index table from
  // the shared substrate. Sharded services are forced write-through — the
  // epoch fence purges volatile state, and a fence must never be able to
  // lose acknowledged (delayed-write) data. Version tokens are salted with
  // the shard id so two shards can never mint aliasing tokens for one file.
  for (std::uint32_t s = 0; s < file_shards; ++s) {
    file::FileServiceConfig fc = config_.file;
    if (file_shards > 1) {
      fc.version_base = static_cast<std::uint64_t>(s) << 56;
      fc.basic_write_policy = disk::WritePolicy::kWriteThrough;
    }
    // Each shard journals its snapshot/COW intentions in its own stable
    // region slot at the tail of disk 0 (slots never overlap).
    fc.snapshot_region_slot = s;
    file_shards_.push_back(
        std::make_unique<file::FileService>(&disks_, &clock_, fc));
  }
  naming_ = std::make_unique<placement::ShardedNamingService>(
      config_.sharding.naming_shards, config_.sharding.virtual_nodes);
  // The transaction service reserves its log region on disk 0 before any
  // file allocation touches it. Transactional and replicated files stay on
  // shard 0 (their services hold server-side state the failover fence must
  // not purge; see docs/SHARDING.md §"what is sharded").
  auto disk0 = disks_.Get(DiskId{0});
  txns_ = std::make_unique<txn::TransactionService>(file_shards_[0].get(),
                                                    *disk0, config_.txn);
  replication_ = std::make_unique<replication::ReplicationService>(
      file_shards_[0].get(), config_.replication);
  anti_entropy_ = std::make_unique<replication::AntiEntropyScanner>(
      replication_.get(), config_.anti_entropy);
  recovery_ = std::make_unique<recovery::RecoveryManager>(
      &disks_, replication_.get());
  recovery_->SetAntiEntropy(anti_entropy_.get());
  detector_ = std::make_unique<recovery::FailureDetector>(&bus_);
  for (std::uint32_t s = 0; s < file_shards; ++s) {
    detector_->Watch(router_->AddressOf(s));
  }
  // Disks are local to the file service machine, not bus services: the
  // detector probes them through a local prober instead of burning network
  // timeouts. Bus addresses still go over the wire.
  detector_->SetProber([this](const std::string& address) -> bool {
    const std::string prefix = "disk-";
    if (address.rfind(prefix, 0) == 0) {
      const DiskId disk{static_cast<std::uint32_t>(
          std::strtoul(address.c_str() + prefix.size(), nullptr, 10))};
      auto server = disks_.Get(disk);
      return server.ok() && (*server)->Reachable();
    }
    return bus_.Probe(address, "failure-detector").ok();
  });
  recovery_->SetDiskDetector(detector_.get());
  if (file_shards > 1) {
    // Failover is live only when there is somewhere to fail over TO. A
    // single-shard facility keeps the seed behavior exactly: no fencing
    // (its service may run delayed writes) and no rerouting.
    recovery_->SetShardRouter(router_.get());
    router_->SetFenceHook([this](std::uint32_t s) {
      // Epoch fence: purge the shard's volatile state (caches, open files)
      // and bump its version tokens. Write-through made this lossless, and
      // the token bump forces every client to revalidate blocks it cached
      // from whichever shard served the file before the route change.
      // Callback promises are dropped WITHOUT grace first: the epoch bump
      // revokes the agents' trust in them synchronously, so — unlike a real
      // crash — no writer needs to wait out the lost leases.
      if (s < file_servers_.size()) file_servers_[s]->DropCallbacksFenced();
      file_shards_[s]->Crash();
    });
  }
  // The cache tier rides on callback promises: without them no peer can
  // vouch for its blocks, so the router must not redirect.
  agent::CacheTierConfig ct = config_.cache_tier;
  ct.enabled = ct.enabled && config_.callback.enabled;
  for (std::uint32_t s = 0; s < file_shards; ++s) {
    agent::CacheTierConfig shard_ct = ct;
    // Distinct deterministic streams per shard so two shards never sample
    // peers in lockstep.
    shard_ct.rng_seed = ct.rng_seed + 0x9E37ull * (s + 1);
    file_servers_.push_back(std::make_unique<agent::FileServiceServer>(
        file_shards_[s].get(), &bus_, router_->AddressOf(s),
        /*token_capacity=*/1024, config_.callback, shard_ct));
  }
  // Observability: one bundle for the whole facility. The bus carries it to
  // every RpcClient and file agent; server-side layers get it directly.
  bus_.SetObservability(&obs_);
  for (auto& shard : file_shards_) shard->SetObservability(&obs_);
  txns_->SetObservability(&obs_);
  replication_->SetObservability(&obs_);
  for (std::uint32_t i = 0; i < config_.disk_count; ++i) {
    if (auto server = disks_.Get(DiskId{i}); server.ok()) {
      (*server)->SetObservability(&obs_);
    }
  }
  DeclareMetrics();
  // FaultPlan disk events name disks by DiskFaultTarget(id); the bus knows
  // nothing about disks, so it hands those events back to the facility.
  bus_.SetFaultHandler([this](const sim::FaultEvent& ev) {
    const std::string prefix = "disk-";
    if (ev.target.rfind(prefix, 0) != 0) return;
    const DiskId disk{static_cast<std::uint32_t>(
        std::strtoul(ev.target.c_str() + prefix.size(), nullptr, 10))};
    if (ev.action == sim::FaultAction::kDiskCrash) {
      (void)CrashDisk(disk);
    } else if (ev.action == sim::FaultAction::kDiskRecover) {
      (void)RecoverDisk(disk);
    } else if (ev.action == sim::FaultAction::kDiskPartition) {
      (void)PartitionDisk(disk);
    } else if (ev.action == sim::FaultAction::kDiskHeal) {
      (void)HealDisk(disk);
    }
  });
}

Status DistributedFileFacility::CrashDisk(DiskId disk) {
  RHODOS_ASSIGN_OR_RETURN(disk::DiskServer * server, disks_.Get(disk));
  server->Crash();
  return OkStatus();
}

Status DistributedFileFacility::RecoverDisk(DiskId disk) {
  RHODOS_ASSIGN_OR_RETURN(disk::DiskServer * server, disks_.Get(disk));
  if (server->crashed()) return server->Recover();
  return OkStatus();
}

Status DistributedFileFacility::PartitionDisk(DiskId disk) {
  RHODOS_ASSIGN_OR_RETURN(disk::DiskServer * server, disks_.Get(disk));
  server->SetPartitioned(true);
  return OkStatus();
}

Status DistributedFileFacility::HealDisk(DiskId disk) {
  RHODOS_ASSIGN_OR_RETURN(disk::DiskServer * server, disks_.Get(disk));
  server->SetPartitioned(false);
  return OkStatus();
}

Machine& DistributedFileFacility::AddMachine() {
  auto m = std::make_unique<Machine>();
  m->id = MachineId{static_cast<std::uint32_t>(machines_.size())};
  // Agents always go through the router; with one shard every route is
  // shard 0 at the historic address, identical to the unrouted path.
  agent::FileAgentConfig ac = config_.agent;
  ac.callbacks = ac.callbacks && config_.callback.enabled;
  m->file_agent = std::make_unique<agent::FileAgent>(
      m->id, &bus_, router_.get(), naming_.get(), ac);
  m->device_agent = std::make_unique<agent::DeviceAgent>(naming_.get());
  m->txn_agent = std::make_unique<agent::TransactionAgentHost>(
      m->id, txns_.get(), naming_.get());
  m->txn_agent->SetObservability(&obs_);
  machines_.push_back(std::move(m));
  return *machines_.back();
}

agent::ProcessContext DistributedFileFacility::CreateProcess() {
  return agent::ProcessContext{ProcessId{next_pid_++}};
}

Result<std::uint64_t> DistributedFileFacility::WriteStream(
    Machine& m, const agent::ProcessContext& process, ObjectDescriptor stream,
    std::span<const std::uint8_t> data) {
  RHODOS_ASSIGN_OR_RETURN(ObjectDescriptor target,
                          process.ResolveStream(stream));
  if (IsDeviceDescriptor(target)) {
    if (target == kStdoutDescriptor || target == kStderrDescriptor) {
      return m.device_agent->WriteStandard(target, data);
    }
    return m.device_agent->Write(target, data);
  }
  return m.file_agent->Write(target, data);
}

Result<std::uint64_t> DistributedFileFacility::ReadStream(
    Machine& m, const agent::ProcessContext& process, ObjectDescriptor stream,
    std::span<std::uint8_t> out) {
  RHODOS_ASSIGN_OR_RETURN(ObjectDescriptor target,
                          process.ResolveStream(stream));
  if (IsDeviceDescriptor(target)) {
    if (target == kStdinDescriptor) {
      return m.device_agent->ReadStandard(out);
    }
    return m.device_agent->Read(target, out);
  }
  return m.file_agent->Read(target, out);
}

void DistributedFileFacility::CrashServers() {
  for (auto& shard : file_shards_) shard->Crash();
  disks_.CrashAll();
}

Status DistributedFileFacility::RecoverServers() {
  RHODOS_RETURN_IF_ERROR(disks_.RecoverAll());
  // Snapshot-journal redo must run before transaction recovery: a committed
  // transaction's redo may touch files whose COW splits or refcount edits
  // were mid-flight at the crash, and redo assumes those are settled.
  for (auto& shard : file_shards_) {
    RHODOS_RETURN_IF_ERROR(shard->RecoverSnapshots());
  }
  return txns_->Recover();
}

void DistributedFileFacility::ResetStats() {
  disks_.ResetStats();
  for (auto& shard : file_shards_) shard->ResetStats();
  txns_->ResetStats();
  bus_.ResetStats();
  obs_.metrics.Reset();
}

// --- observability -------------------------------------------------------------

DistributedFileFacility::~DistributedFileFacility() {
  if (obs::MetricsRegistry* drain = obs::GlobalMetricsDrain()) {
    drain->Merge(StatsSnapshot());
  }
}

namespace {

// The facility's canonical metric catalogue. Every name DumpStats() can
// emit is listed here (and mirrored in docs/OBSERVABILITY.md plus the
// golden schema scripts/check.sh diffs against) — instrumentation sites
// auto-declare, but pre-declaring keeps the schema workload-independent.
constexpr const char* kCounters[] = {
    // Client-side block cache of each machine's file agent (summed).
    "agent.cache.hits", "agent.cache.misses", "agent.cache.writebacks",
    "agent.cache.invalidations", "agent.descriptors_issued",
    // Batched write-behind, version-token coherence, and the per-agent
    // name cache (summed across machines).
    "agent.writeback_batches", "agent.writeback_runs",
    "agent.stale_invalidations", "agent.name_cache_hits",
    // Callback/lease coherence, agent side (summed across machines).
    "agent.callback_fast_opens", "agent.callback_renewals",
    "agent.callback_breaks",
    // Cache-tier read fan-out, agent side (summed across machines):
    // peer-reads served, refused (busy shed / stale token / blocks gone),
    // reads satisfied from a peer, and redirects that fell back to origin.
    "agent.peer_serves", "agent.peer_serve_rejects", "agent.peer_fetches",
    "agent.peer_fallbacks",
    // Naming service: inverted-index probes (summed over shards) and the
    // sharded layer's fan-out of registrations onto key-owning shards.
    "naming.fanout_registrations", "naming.index_probes",
    // Message bus (NetStats).
    "bus.bytes_moved", "bus.calls", "bus.deliveries", "bus.drops_reply",
    "bus.drops_request", "bus.duplicates", "bus.probes",
    "bus.rejected_down", "bus.rejected_partitioned", "bus.time_charged_ns",
    "bus.timeouts",
    // Failure detector.
    "detector.declared_down", "detector.probe_failures", "detector.probes",
    "detector.recoveries", "detector.suspicions",
    // Disk service: main device, stable mirror, track cache, free-space
    // run array (summed across disks).
    "disk.cache.dirty_writebacks", "disk.cache.evictions",
    "disk.cache.hits", "disk.cache.misses",
    "disk.elevator_reorders",
    "disk.fragments_read", "disk.fragments_written",
    "disk.free_space.array_hits", "disk.free_space.array_misses",
    "disk.free_space.rebuilds", "disk.free_space.stale_discards",
    "disk.read_references", "disk.stable.fragments_read",
    "disk.stable.fragments_written", "disk.stable.read_references",
    "disk.stable.time_charged_ns", "disk.stable.write_references",
    "disk.time_charged_ns", "disk.tracks_seeked",
    "disk.vec_merged_runs", "disk.vec_requests", "disk.vec_runs",
    "disk.write_references",
    // Server-side file service (block pool, index tables, read-ahead).
    "file.bytes_read", "file.bytes_written", "file.cache.hits",
    "file.cache.misses", "file.clones", "file.cow_blocks_copied",
    "file.cow_splits", "file.fit_loads", "file.fit_stores",
    "file.readahead_hits", "file.readahead_issued", "file.readahead_wasted",
    "file.reads", "file.shard_failovers", "file.shard_readmissions",
    "file.shared_releases", "file.snapshots", "file.writes",
    // Placement layer: shard routing and the failover state machine.
    "placement.lookups", "placement.reroutes", "placement.shard_readmissions",
    "placement.shard_suspicions",
    // Lock manager.
    "lock.aborts_signalled", "lock.breaks", "lock.conversions",
    "lock.grants", "lock.immediate_grants", "lock.records_peak",
    "lock.wait_time_ns", "lock.waits",
    // Recovery manager.
    "recovery.auto_repairs", "recovery.disk_failures_detected",
    "recovery.disk_recoveries_detected", "recovery.repair_failures",
    "recovery.replicas_marked_down", "recovery.ticks",
    // Replicated files: quorum outcomes, hinted handoff, anti-entropy.
    "replication.anti_entropy_repairs", "replication.anti_entropy_scans",
    "replication.degraded_reads", "replication.degraded_writes",
    "replication.epoch_bumps", "replication.hints_dropped",
    "replication.hints_queued", "replication.hints_replayed",
    "replication.read_repairs", "replication.reads", "replication.repairs",
    "replication.stale_reads", "replication.token_replays",
    "replication.unavailable_writes", "replication.writes",
    // At-least-once RPC (summed over every machine's file agent), plus the
    // push-model circuit-breaker trip count.
    "rpc.backoff_wait_ns", "rpc.calls", "rpc.circuit_trips",
    "rpc.deadline_exhausted", "rpc.failures", "rpc.retries",
    "rpc.successes",
    // File-service server adapter (request dispatch, replay table).
    "service.duplicate_replays", "service.requests",
    // Callback/lease coherence, server side (summed across shards).
    "file.callback_grants", "file.callback_breaks",
    "file.callback_break_failures", "file.callback_expired",
    "file.callback_grace_waits",
    // Cache-tier read router, server side (summed across shards).
    "file.redirects_issued",
    // Transaction service and the per-machine transaction agents.
    "txn.aborts_broken", "txn.aborts_explicit", "txn.begins",
    "txn.commits",
    // Group-commit pipeline over the intention log.
    "txn.group_commit.acks", "txn.group_commit.batches",
    "txn.group_commit.flushes", "txn.group_commit.records",
    "txn.group_commit.seals_deadline", "txn.group_commit.seals_full",
    "txn.group_commit.seals_window",
    // Intention log framing (forces = stable references the log cost).
    "txn.log.forces", "txn.log.records", "txn.log.salvaged_records",
    "txn.log.torn_batches",
    "txn.pages_logged", "txn.ranges_logged",
    "txn.recovered_discarded", "txn.recovered_redone",
    "txn.shadow_commits", "txn.wal_commits",
    "txn_agent.descriptors_issued", "txn_agent.page_cache.hits",
    "txn_agent.page_cache.misses", "txn_agent.retirements",
    "txn_agent.spawns",
};

constexpr const char* kGauges[] = {
    "disk.free_fragments",
    "facility.disk_count",
    "file.callback_holders",
    "file.hot_files",
    "file.shared_blocks",
    "facility.machine_count",
    "facility.sim_now_ns",
    "placement.epoch",
    "placement.file_shards",
    "placement.naming_shards",
    "replication.hint_queue_depth",
};

constexpr const char* kHistograms[] = {
    "agent.op_latency_ns", "agent.peer_serve_latency_ns",
    "disk.reference_ns", "disk.seek_ns",
    "replication.hint_age_ns", "replication.staleness_ns",
    "rpc.backoff_ns", "rpc.call_latency_ns", "txn.commit_latency_ns",
    "txn.group_commit.ack_latency_ns", "txn.group_commit.batch_records",
};

}  // namespace

void DistributedFileFacility::DeclareMetrics() {
  for (const char* name : kCounters) obs_.metrics.DeclareCounter(name);
  for (const char* name : kGauges) obs_.metrics.DeclareGauge(name);
  for (const char* name : kHistograms) obs_.metrics.DeclareHistogram(name);
}

void DistributedFileFacility::PullLayerStats() {
  obs::MetricsRegistry& m = obs_.metrics;

  const sim::NetStats& net = bus_.stats();
  m.SetCounter("bus.calls", net.calls);
  m.SetCounter("bus.deliveries", net.deliveries);
  m.SetCounter("bus.drops_request", net.drops_request);
  m.SetCounter("bus.drops_reply", net.drops_reply);
  m.SetCounter("bus.duplicates", net.duplicates);
  m.SetCounter("bus.timeouts", net.timeouts);
  m.SetCounter("bus.rejected_down", net.rejected_down);
  m.SetCounter("bus.rejected_partitioned", net.rejected_partitioned);
  m.SetCounter("bus.probes", net.probes);
  m.SetCounter("bus.bytes_moved", net.bytes_moved);
  m.SetCounter("bus.time_charged_ns",
               static_cast<std::uint64_t>(net.time_charged));

  agent::FileAgentStats fa;
  sim::RpcHealth rpc;
  std::uint64_t rpc_retries = 0;
  agent::TxnAgentStats ta;
  agent::TransactionAgentHost::CacheStats tc;
  for (const auto& machine : machines_) {
    const agent::FileAgentStats& s = machine->file_agent->stats();
    fa.cache_hits += s.cache_hits;
    fa.cache_misses += s.cache_misses;
    fa.descriptors_issued += s.descriptors_issued;
    fa.writebacks += s.writebacks;
    fa.invalidations += s.invalidations;
    fa.writeback_batches += s.writeback_batches;
    fa.writeback_runs += s.writeback_runs;
    fa.stale_invalidations += s.stale_invalidations;
    fa.name_cache_hits += s.name_cache_hits;
    fa.callback_fast_opens += s.callback_fast_opens;
    fa.callback_renewals += s.callback_renewals;
    fa.callback_breaks += s.callback_breaks;
    fa.peer_serves += s.peer_serves;
    fa.peer_serve_rejects += s.peer_serve_rejects;
    fa.peer_fetches += s.peer_fetches;
    fa.peer_fallbacks += s.peer_fallbacks;
    const sim::RpcHealth& h = machine->file_agent->rpc_health();
    rpc.calls += h.calls;
    rpc.successes += h.successes;
    rpc.failures += h.failures;
    rpc.deadline_exhausted += h.deadline_exhausted;
    rpc.backoff_waited += h.backoff_waited;
    rpc_retries += machine->file_agent->rpc_retries();
    const agent::TxnAgentStats& t = machine->txn_agent->stats();
    ta.spawns += t.spawns;
    ta.retirements += t.retirements;
    ta.descriptors_issued += t.descriptors_issued;
    const auto& c = machine->txn_agent->cache_stats();
    tc.page_hits += c.page_hits;
    tc.page_misses += c.page_misses;
  }
  m.SetCounter("agent.cache.hits", fa.cache_hits);
  m.SetCounter("agent.cache.misses", fa.cache_misses);
  m.SetCounter("agent.cache.writebacks", fa.writebacks);
  m.SetCounter("agent.cache.invalidations", fa.invalidations);
  m.SetCounter("agent.descriptors_issued", fa.descriptors_issued);
  m.SetCounter("agent.writeback_batches", fa.writeback_batches);
  m.SetCounter("agent.writeback_runs", fa.writeback_runs);
  m.SetCounter("agent.stale_invalidations", fa.stale_invalidations);
  m.SetCounter("agent.name_cache_hits", fa.name_cache_hits);
  m.SetCounter("agent.callback_fast_opens", fa.callback_fast_opens);
  m.SetCounter("agent.callback_renewals", fa.callback_renewals);
  m.SetCounter("agent.callback_breaks", fa.callback_breaks);
  m.SetCounter("agent.peer_serves", fa.peer_serves);
  m.SetCounter("agent.peer_serve_rejects", fa.peer_serve_rejects);
  m.SetCounter("agent.peer_fetches", fa.peer_fetches);
  m.SetCounter("agent.peer_fallbacks", fa.peer_fallbacks);
  m.SetCounter("naming.index_probes", naming_->stats().index_probes);
  m.SetCounter("naming.fanout_registrations",
               naming_->sharding_stats().fanout_registrations);
  m.SetCounter("rpc.calls", rpc.calls);
  m.SetCounter("rpc.successes", rpc.successes);
  m.SetCounter("rpc.failures", rpc.failures);
  m.SetCounter("rpc.deadline_exhausted", rpc.deadline_exhausted);
  m.SetCounter("rpc.retries", rpc_retries);
  m.SetCounter("rpc.backoff_wait_ns",
               static_cast<std::uint64_t>(rpc.backoff_waited));
  m.SetCounter("txn_agent.spawns", ta.spawns);
  m.SetCounter("txn_agent.retirements", ta.retirements);
  m.SetCounter("txn_agent.descriptors_issued", ta.descriptors_issued);
  m.SetCounter("txn_agent.page_cache.hits", tc.page_hits);
  m.SetCounter("txn_agent.page_cache.misses", tc.page_misses);

  agent::FsServerStats srv;
  std::size_t callback_holders = 0;
  std::size_t hot_files = 0;
  for (const auto& server : file_servers_) {
    srv.requests += server->stats().requests;
    srv.duplicate_replays += server->stats().duplicate_replays;
    srv.callback_grants += server->stats().callback_grants;
    srv.callback_breaks += server->stats().callback_breaks;
    srv.callback_break_failures += server->stats().callback_break_failures;
    srv.callback_expired += server->stats().callback_expired;
    srv.callback_grace_waits += server->stats().callback_grace_waits;
    srv.redirects_issued += server->stats().redirects_issued;
    callback_holders += server->CallbackHolderCount();
    hot_files += server->HotFileCount();
  }
  m.SetCounter("service.requests", srv.requests);
  m.SetCounter("service.duplicate_replays", srv.duplicate_replays);
  m.SetCounter("file.callback_grants", srv.callback_grants);
  m.SetCounter("file.callback_breaks", srv.callback_breaks);
  m.SetCounter("file.callback_break_failures", srv.callback_break_failures);
  m.SetCounter("file.callback_expired", srv.callback_expired);
  m.SetCounter("file.callback_grace_waits", srv.callback_grace_waits);
  m.SetCounter("file.redirects_issued", srv.redirects_issued);
  m.SetGauge("file.callback_holders", static_cast<double>(callback_holders));
  m.SetGauge("file.hot_files", static_cast<double>(hot_files));

  file::FileServiceStats fs;
  std::uint64_t shared_blocks = 0;
  for (const auto& shard : file_shards_) {
    const file::FileServiceStats& s = shard->stats();
    fs.cache_hits += s.cache_hits;
    fs.cache_misses += s.cache_misses;
    fs.reads += s.reads;
    fs.writes += s.writes;
    fs.bytes_read += s.bytes_read;
    fs.bytes_written += s.bytes_written;
    fs.fit_loads += s.fit_loads;
    fs.fit_stores += s.fit_stores;
    fs.readahead_issued += s.readahead_issued;
    fs.readahead_hits += s.readahead_hits;
    fs.readahead_wasted += s.readahead_wasted;
    fs.snapshots += s.snapshots;
    fs.clones += s.clones;
    fs.cow_splits += s.cow_splits;
    fs.cow_blocks_copied += s.cow_blocks_copied;
    fs.shared_releases += s.shared_releases;
    shared_blocks += shard->SharedBlockCount();
  }
  m.SetCounter("file.cache.hits", fs.cache_hits);
  m.SetCounter("file.cache.misses", fs.cache_misses);
  m.SetCounter("file.reads", fs.reads);
  m.SetCounter("file.writes", fs.writes);
  m.SetCounter("file.bytes_read", fs.bytes_read);
  m.SetCounter("file.bytes_written", fs.bytes_written);
  m.SetCounter("file.fit_loads", fs.fit_loads);
  m.SetCounter("file.fit_stores", fs.fit_stores);
  m.SetCounter("file.readahead_issued", fs.readahead_issued);
  m.SetCounter("file.readahead_hits", fs.readahead_hits);
  m.SetCounter("file.readahead_wasted", fs.readahead_wasted);
  m.SetCounter("file.snapshots", fs.snapshots);
  m.SetCounter("file.clones", fs.clones);
  m.SetCounter("file.cow_splits", fs.cow_splits);
  m.SetCounter("file.cow_blocks_copied", fs.cow_blocks_copied);
  m.SetCounter("file.shared_releases", fs.shared_releases);
  m.SetGauge("file.shared_blocks", static_cast<double>(shared_blocks));

  const placement::ShardRouterStats& pl = router_->stats();
  m.SetCounter("placement.lookups",
               pl.lookups + naming_->sharding_stats().lookups);
  m.SetCounter("placement.reroutes", pl.reroutes);
  m.SetCounter("placement.shard_suspicions", pl.suspicions);
  m.SetCounter("placement.shard_readmissions", pl.readmissions);

  const txn::LockStats& lk = txns_->locks().stats();
  m.SetCounter("lock.grants", lk.grants);
  m.SetCounter("lock.immediate_grants", lk.immediate_grants);
  m.SetCounter("lock.waits", lk.waits);
  m.SetCounter("lock.conversions", lk.conversions);
  m.SetCounter("lock.breaks", lk.breaks);
  m.SetCounter("lock.aborts_signalled", lk.aborts_signalled);
  m.SetCounter("lock.records_peak", lk.records_peak);
  m.SetCounter("lock.wait_time_ns", lk.wait_time_ns);

  const txn::TxnServiceStats& tx = txns_->stats();
  m.SetCounter("txn.begins", tx.begins);
  m.SetCounter("txn.commits", tx.commits);
  m.SetCounter("txn.aborts_explicit", tx.aborts_explicit);
  m.SetCounter("txn.aborts_broken", tx.aborts_broken);
  m.SetCounter("txn.wal_commits", tx.wal_commits);
  m.SetCounter("txn.shadow_commits", tx.shadow_commits);
  m.SetCounter("txn.pages_logged", tx.pages_logged);
  m.SetCounter("txn.ranges_logged", tx.ranges_logged);
  m.SetCounter("txn.recovered_redone", tx.recovered_redone);
  m.SetCounter("txn.recovered_discarded", tx.recovered_discarded);

  const txn::LogPipelineStats gc = txns_->pipeline().stats();
  m.SetCounter("txn.group_commit.acks", gc.acks);
  m.SetCounter("txn.group_commit.batches", gc.batches);
  m.SetCounter("txn.group_commit.flushes", gc.flushes);
  m.SetCounter("txn.group_commit.records", gc.records);
  m.SetCounter("txn.group_commit.seals_deadline", gc.seals_deadline);
  m.SetCounter("txn.group_commit.seals_full", gc.seals_full);
  m.SetCounter("txn.group_commit.seals_window", gc.seals_window);

  const txn::TxnLogStats& tl = txns_->log().stats();
  m.SetCounter("txn.log.forces", tl.forces);
  m.SetCounter("txn.log.records", tl.appends);
  m.SetCounter("txn.log.salvaged_records", tl.salvaged_records);
  m.SetCounter("txn.log.torn_batches", tl.torn_batches);

  const replication::ReplicationStats& rep = replication_->stats();
  m.SetCounter("replication.writes", rep.writes);
  m.SetCounter("replication.reads", rep.reads);
  m.SetCounter("replication.degraded_writes", rep.degraded_writes);
  m.SetCounter("replication.degraded_reads", rep.failovers);
  m.SetCounter("replication.repairs", rep.repairs);
  m.SetCounter("replication.unavailable_writes", rep.unavailable_writes);
  m.SetCounter("replication.stale_reads", rep.stale_reads);
  m.SetCounter("replication.read_repairs", rep.read_repairs);
  m.SetCounter("replication.hints_queued", rep.hints_queued);
  m.SetCounter("replication.hints_replayed", rep.hints_replayed);
  m.SetCounter("replication.hints_dropped", rep.hints_dropped);
  m.SetCounter("replication.epoch_bumps", rep.epoch_bumps);
  m.SetCounter("replication.token_replays", rep.token_replays);

  const replication::AntiEntropyStats& ae = anti_entropy_->stats();
  m.SetCounter("replication.anti_entropy_scans", ae.scans);
  m.SetCounter("replication.anti_entropy_repairs", ae.replicas_caught_up);

  const recovery::RecoveryStats& rec = recovery_->stats();
  m.SetCounter("recovery.ticks", rec.ticks);
  m.SetCounter("recovery.disk_failures_detected",
               rec.disk_failures_detected);
  m.SetCounter("recovery.disk_recoveries_detected",
               rec.disk_recoveries_detected);
  m.SetCounter("recovery.replicas_marked_down", rec.replicas_marked_down);
  m.SetCounter("recovery.auto_repairs", rec.auto_repairs);
  m.SetCounter("recovery.repair_failures", rec.repair_failures);
  m.SetCounter("file.shard_failovers", rec.shard_failovers);
  m.SetCounter("file.shard_readmissions", rec.shard_readmissions);

  const recovery::FailureDetectorStats& det = detector_->stats();
  m.SetCounter("detector.probes", det.probes);
  m.SetCounter("detector.probe_failures", det.probe_failures);
  m.SetCounter("detector.suspicions", det.suspicions);
  m.SetCounter("detector.declared_down", det.declared_down);
  m.SetCounter("detector.recoveries", det.recoveries);

  sim::DiskStats main_sum, stable_sum;
  disk::TrackCacheStats cache_sum;
  disk::FreeSpaceStats free_sum;
  disk::VecIoStats vec_sum;
  std::uint64_t free_fragments = 0;
  for (const auto& server : disks_.disks()) {
    const sim::DiskStats& ms = server->main_stats();
    main_sum.read_references += ms.read_references;
    main_sum.write_references += ms.write_references;
    main_sum.fragments_read += ms.fragments_read;
    main_sum.fragments_written += ms.fragments_written;
    main_sum.tracks_seeked += ms.tracks_seeked;
    main_sum.time_charged += ms.time_charged;
    const sim::DiskStats& ss = server->stable_stats();
    stable_sum.read_references += ss.read_references;
    stable_sum.write_references += ss.write_references;
    stable_sum.fragments_read += ss.fragments_read;
    stable_sum.fragments_written += ss.fragments_written;
    stable_sum.time_charged += ss.time_charged;
    const disk::TrackCacheStats& cs = server->cache_stats();
    cache_sum.hits += cs.hits;
    cache_sum.misses += cs.misses;
    cache_sum.evictions += cs.evictions;
    cache_sum.dirty_writebacks += cs.dirty_writebacks;
    const disk::FreeSpaceStats& fss = server->free_space_stats();
    free_sum.array_hits += fss.array_hits;
    free_sum.array_misses += fss.array_misses;
    free_sum.rebuilds += fss.rebuilds;
    free_sum.stale_discards += fss.stale_discards;
    const disk::VecIoStats& vs = server->vec_stats();
    vec_sum.requests += vs.requests;
    vec_sum.runs += vs.runs;
    vec_sum.merged_runs += vs.merged_runs;
    vec_sum.elevator_reorders += vs.elevator_reorders;
    free_fragments += server->FreeFragmentCount();
  }
  m.SetCounter("disk.read_references", main_sum.read_references);
  m.SetCounter("disk.write_references", main_sum.write_references);
  m.SetCounter("disk.fragments_read", main_sum.fragments_read);
  m.SetCounter("disk.fragments_written", main_sum.fragments_written);
  m.SetCounter("disk.tracks_seeked", main_sum.tracks_seeked);
  m.SetCounter("disk.time_charged_ns",
               static_cast<std::uint64_t>(main_sum.time_charged));
  m.SetCounter("disk.stable.read_references", stable_sum.read_references);
  m.SetCounter("disk.stable.write_references", stable_sum.write_references);
  m.SetCounter("disk.stable.fragments_read", stable_sum.fragments_read);
  m.SetCounter("disk.stable.fragments_written",
               stable_sum.fragments_written);
  m.SetCounter("disk.stable.time_charged_ns",
               static_cast<std::uint64_t>(stable_sum.time_charged));
  m.SetCounter("disk.cache.hits", cache_sum.hits);
  m.SetCounter("disk.cache.misses", cache_sum.misses);
  m.SetCounter("disk.cache.evictions", cache_sum.evictions);
  m.SetCounter("disk.cache.dirty_writebacks", cache_sum.dirty_writebacks);
  m.SetCounter("disk.free_space.array_hits", free_sum.array_hits);
  m.SetCounter("disk.free_space.array_misses", free_sum.array_misses);
  m.SetCounter("disk.free_space.rebuilds", free_sum.rebuilds);
  m.SetCounter("disk.free_space.stale_discards", free_sum.stale_discards);
  m.SetCounter("disk.vec_requests", vec_sum.requests);
  m.SetCounter("disk.vec_runs", vec_sum.runs);
  m.SetCounter("disk.vec_merged_runs", vec_sum.merged_runs);
  m.SetCounter("disk.elevator_reorders", vec_sum.elevator_reorders);

  m.SetGauge("facility.disk_count", static_cast<double>(config_.disk_count));
  m.SetGauge("facility.machine_count",
             static_cast<double>(machines_.size()));
  m.SetGauge("facility.sim_now_ns", static_cast<double>(clock_.Now()));
  m.SetGauge("placement.epoch", static_cast<double>(router_->epoch()));
  m.SetGauge("placement.file_shards",
             static_cast<double>(router_->ShardCount()));
  m.SetGauge("placement.naming_shards",
             static_cast<double>(naming_->ShardCount()));
  m.SetGauge("disk.free_fragments", static_cast<double>(free_fragments));
  m.SetGauge("replication.hint_queue_depth",
             static_cast<double>(replication_->TotalPendingHints()));
}

obs::MetricsSnapshot DistributedFileFacility::StatsSnapshot() {
  PullLayerStats();
  return obs_.metrics.Snapshot();
}

std::string DistributedFileFacility::DumpStats(bool json) {
  const obs::MetricsSnapshot snap = StatsSnapshot();
  return json ? snap.ToJson() : snap.ToText();
}

}  // namespace rhodos::core
