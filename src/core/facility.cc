#include "core/facility.h"

#include <cstdlib>

namespace rhodos::core {

DistributedFileFacility::DistributedFileFacility(FacilityConfig config)
    : config_(config), bus_(&clock_, config.network), disks_(config.placement) {
  for (std::uint32_t i = 0; i < config_.disk_count; ++i) {
    disk::DiskServerConfig dc;
    dc.geometry = config_.geometry;
    dc.cache_capacity_tracks = config_.disk_cache_tracks;
    dc.track_readahead = config_.track_readahead;
    dc.fault_seed = 100 + i;
    disks_.AddDisk(dc, &clock_);
  }
  files_ = std::make_unique<file::FileService>(&disks_, &clock_,
                                               config_.file);
  // The transaction service reserves its log region on disk 0 before any
  // file allocation touches it.
  auto disk0 = disks_.Get(DiskId{0});
  txns_ = std::make_unique<txn::TransactionService>(files_.get(), *disk0,
                                                    config_.txn);
  replication_ =
      std::make_unique<replication::ReplicationService>(files_.get());
  recovery_ = std::make_unique<recovery::RecoveryManager>(
      &disks_, replication_.get());
  detector_ = std::make_unique<recovery::FailureDetector>(&bus_);
  detector_->Watch(kFileServiceAddress);
  file_server_ = std::make_unique<agent::FileServiceServer>(
      files_.get(), &bus_, kFileServiceAddress);
  // FaultPlan disk events name disks by DiskFaultTarget(id); the bus knows
  // nothing about disks, so it hands those events back to the facility.
  bus_.SetFaultHandler([this](const sim::FaultEvent& ev) {
    const std::string prefix = "disk-";
    if (ev.target.rfind(prefix, 0) != 0) return;
    const DiskId disk{static_cast<std::uint32_t>(
        std::strtoul(ev.target.c_str() + prefix.size(), nullptr, 10))};
    if (ev.action == sim::FaultAction::kDiskCrash) {
      (void)CrashDisk(disk);
    } else if (ev.action == sim::FaultAction::kDiskRecover) {
      (void)RecoverDisk(disk);
    }
  });
}

Status DistributedFileFacility::CrashDisk(DiskId disk) {
  RHODOS_ASSIGN_OR_RETURN(disk::DiskServer * server, disks_.Get(disk));
  server->Crash();
  return OkStatus();
}

Status DistributedFileFacility::RecoverDisk(DiskId disk) {
  RHODOS_ASSIGN_OR_RETURN(disk::DiskServer * server, disks_.Get(disk));
  if (server->crashed()) return server->Recover();
  return OkStatus();
}

Machine& DistributedFileFacility::AddMachine() {
  auto m = std::make_unique<Machine>();
  m->id = MachineId{static_cast<std::uint32_t>(machines_.size())};
  m->file_agent = std::make_unique<agent::FileAgent>(
      m->id, &bus_, kFileServiceAddress, &naming_, config_.agent);
  m->device_agent = std::make_unique<agent::DeviceAgent>(&naming_);
  m->txn_agent = std::make_unique<agent::TransactionAgentHost>(
      m->id, txns_.get(), &naming_);
  machines_.push_back(std::move(m));
  return *machines_.back();
}

agent::ProcessContext DistributedFileFacility::CreateProcess() {
  return agent::ProcessContext{ProcessId{next_pid_++}};
}

Result<std::uint64_t> DistributedFileFacility::WriteStream(
    Machine& m, const agent::ProcessContext& process, ObjectDescriptor stream,
    std::span<const std::uint8_t> data) {
  RHODOS_ASSIGN_OR_RETURN(ObjectDescriptor target,
                          process.ResolveStream(stream));
  if (IsDeviceDescriptor(target)) {
    if (target == kStdoutDescriptor || target == kStderrDescriptor) {
      return m.device_agent->WriteStandard(target, data);
    }
    return m.device_agent->Write(target, data);
  }
  return m.file_agent->Write(target, data);
}

Result<std::uint64_t> DistributedFileFacility::ReadStream(
    Machine& m, const agent::ProcessContext& process, ObjectDescriptor stream,
    std::span<std::uint8_t> out) {
  RHODOS_ASSIGN_OR_RETURN(ObjectDescriptor target,
                          process.ResolveStream(stream));
  if (IsDeviceDescriptor(target)) {
    if (target == kStdinDescriptor) {
      return m.device_agent->ReadStandard(out);
    }
    return m.device_agent->Read(target, out);
  }
  return m.file_agent->Read(target, out);
}

void DistributedFileFacility::CrashServers() {
  files_->Crash();
  disks_.CrashAll();
}

Status DistributedFileFacility::RecoverServers() {
  RHODOS_RETURN_IF_ERROR(disks_.RecoverAll());
  return txns_->Recover();
}

void DistributedFileFacility::ResetStats() {
  disks_.ResetStats();
  files_->ResetStats();
  txns_->ResetStats();
  bus_.ResetStats();
}

}  // namespace rhodos::core
