// Chaos harness: a seeded mixed workload driven against the assembled
// facility while a FaultPlan crashes disks, downs services and partitions
// callers — then an invariant sweep over the wreckage.
//
// The paper argues its reliability mechanisms (idempotent at-least-once
// messages §3, intentions-list transactions §6, replication §2.1) each in
// isolation; the ChaosRunner composes them: a disk dies mid-transaction
// while the network is dropping replies, and the volume must still audit
// clean. Everything is deterministic given (workload seed, fault plan):
// the same run always produces the same report.
//
// Workload oracle: the runner keeps, per object (replica group / agent
// file / transaction file), the byte image that a *successful* operation
// last established. A failed write leaves the object "unknown" until the
// next successful write — a failed write-all may legitimately have torn
// one replica, and a client cannot know which bytes landed. Invariants:
//
//  I1  no corrupt success: a read that RETURNED OK matches the oracle;
//  I2  committed durability: every transaction whose commit point was
//      reached (even if applying failed and recovery had to redo it) shows
//      its data after final recovery;
//  I3  convergence: after the final repair pass every replica of every
//      group acknowledges the group version;
//  I4  fsck: the structural audit of every file involved reports clean;
//  I5  snapshot immutability: a snapshot read that returned OK (including
//      after the final recovery) is byte-identical to its capture image,
//      no matter how much the origin or any clone was overwritten.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/facility.h"
#include "recovery/recovery_manager.h"
#include "sim/message_bus.h"

namespace rhodos::core {

struct ChaosWorkloadConfig {
  std::uint64_t seed = 1;
  int operations = 400;
  std::uint32_t replica_groups = 2;
  std::uint32_t replicas_per_group = 3;  // clamped to the disk count
  std::uint32_t txn_files = 2;
  std::uint32_t agent_files = 2;
  std::uint32_t region_bytes = 4096;  // oracle-tracked bytes per object
  SimTime time_per_op = 2 * kSimMillisecond;  // clock advance between ops
  // Snapshot/clone storm (E23). 0 keeps the workload byte-identical to the
  // pre-snapshot runner (the rng stream is untouched); >0 adds capture /
  // clone-write / image-read steps up to this many live images.
  std::uint32_t max_images = 0;
  // When >= 0, every service and every disk crashes at this op ordinal and
  // recovery (snapshot journal first, then the intention log) runs mid-storm.
  int service_crash_at_op = -1;
};

struct ChaosReport {
  // Workload counters.
  std::uint64_t operations = 0;
  std::uint64_t op_failures = 0;  // ops the faults made fail (legal)
  std::uint64_t replicated_writes = 0;
  std::uint64_t replicated_reads = 0;
  std::uint64_t txn_commits = 0;
  std::uint64_t txn_aborts = 0;
  std::uint64_t agent_writes = 0;
  std::uint64_t agent_reads = 0;
  std::uint64_t stale_reads = 0;  // reads served best-effort, flagged stale
  // Snapshot/clone storm counters (zero when max_images == 0).
  std::uint64_t snapshots_taken = 0;
  std::uint64_t clones_taken = 0;
  std::uint64_t clone_writes = 0;
  std::uint64_t image_reads = 0;
  // What the recovery machinery did while the faults ran.
  std::uint64_t failovers = 0;
  std::uint64_t auto_repairs = 0;
  std::uint64_t read_repairs = 0;
  std::uint64_t token_replays = 0;  // duplicate writes absorbed by token
  std::uint64_t disk_failures_seen = 0;
  std::uint64_t disk_recoveries_seen = 0;
  // Invariant verdicts (all zero / clean on a surviving run).
  std::uint64_t corrupt_reads = 0;        // I1 violations during the run
  std::uint64_t committed_data_lost = 0;  // I2 violations at the end
  std::uint64_t replica_mismatches = 0;   // I1 re-checked at the end
  std::uint64_t unconverged_groups = 0;   // I3 violations
  std::uint64_t fsck_issues = 0;          // I4 violations
  std::uint64_t snapshot_mismatches = 0;  // I5 violations
  bool fsck_clean = false;
  // What the audit actually verified (forensics for the refcount sweep).
  std::uint64_t fsck_refcounts_checked = 0;
  std::uint64_t fsck_shared_blocks = 0;
  bool completed = false;  // workload + verification ran to the end
  // Full facility metrics at the end of the run (Facility::DumpStats JSON):
  // the operator's forensic record of what the faults cost each layer.
  std::string metrics_json;

  bool ok() const {
    return completed && corrupt_reads == 0 && committed_data_lost == 0 &&
           replica_mismatches == 0 && unconverged_groups == 0 &&
           snapshot_mismatches == 0 && fsck_clean;
  }
  std::string Summary() const;
};

class ChaosRunner {
 public:
  explicit ChaosRunner(DistributedFileFacility* facility,
                       ChaosWorkloadConfig config = {});

  // Installs `plan`, drives the workload, heals the world, runs recovery
  // and the invariant suite. An error return means SETUP failed; faults
  // encountered mid-workload are reported, not returned.
  Result<ChaosReport> Run(sim::FaultPlan plan);

 private:
  struct Oracle {
    std::vector<std::uint8_t> data;
    bool known = false;  // false until a write confirmedly succeeds
  };

  std::vector<std::uint8_t> OpPattern(std::uint64_t op) const;
  void StepReplicatedWrite(std::size_t target, std::uint64_t op,
                           ChaosReport& report);
  void StepReplicatedRead(std::size_t target, ChaosReport& report);
  void StepTxnCommit(std::size_t target, std::uint64_t op,
                     ChaosReport& report);
  void StepAgentWrite(std::size_t target, std::uint64_t op,
                      ChaosReport& report);
  void StepAgentRead(std::size_t target, ChaosReport& report);
  void StepCapture(std::size_t source, std::uint64_t op, ChaosReport& report);
  void StepImageOp(std::uint64_t op, ChaosReport& report);
  void HealAndRecover(ChaosReport& report);
  void Verify(ChaosReport& report);

  DistributedFileFacility* f_;
  ChaosWorkloadConfig config_;
  Rng rng_;

  Machine* machine_ = nullptr;
  std::vector<replication::GroupId> groups_;
  std::vector<Oracle> group_oracle_;
  std::vector<FileId> txn_files_;
  std::vector<Oracle> txn_oracle_;
  std::vector<ObjectDescriptor> agent_files_;
  std::vector<FileId> agent_file_ids_;
  std::vector<Oracle> agent_oracle_;
  // Live snapshot/clone images. A snapshot's oracle is frozen at capture;
  // a clone's oracle moves with its own confirmed writes.
  struct ImageState {
    ObjectDescriptor od{};
    FileId id{};
    bool writable = false;  // clone
    Oracle oracle;
  };
  std::vector<ImageState> images_;
};

}  // namespace rhodos::core
