// The RHODOS distributed file facility — the assembled architecture of
// Figure 1 (paper §2.2), generalised to N metadata shards.
//
//   client process
//     -> file agent / transaction agent / device agent   (per machine)
//       -> placement layer (shard router / sharded naming)
//         -> file-service shard 0 .. N-1  +  naming shard 0 .. M-1
//           -> block (disk) service                       (per disk, shared)
//
// "Each of these services has been implemented as a separate layer and
// provides a clean interface to its users"; caching exists at each level so
// a request rarely descends all the way. The facade constructs the layers,
// wires the message bus between client machines and the file service, and
// offers the whole-system failure controls (crash / recover) the
// reliability experiments exercise.
//
// Sharding (docs/SHARDING.md): FacilityConfig::sharding partitions the
// metadata plane. Every file-service shard sits on the SAME disk registry
// (the paper's block service is the shared substrate, like Lustre's OSTs
// under multiple MDSes), so ownership is a routing convention: the
// placement map says which shard serves a FileId, and failover is a route
// change, not a data migration. The default config (1 shard) is
// wire-identical to the paper's single-instance topology.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "agent/device_agent.h"
#include "agent/file_agent.h"
#include "agent/file_service_server.h"
#include "agent/process.h"
#include "agent/transaction_agent.h"
#include "common/sim_clock.h"
#include "disk/disk_registry.h"
#include "file/file_service.h"
#include "naming/naming_service.h"
#include "obs/observability.h"
#include "placement/shard_router.h"
#include "placement/sharded_naming.h"
#include "recovery/failure_detector.h"
#include "recovery/recovery_manager.h"
#include "replication/anti_entropy.h"
#include "replication/replication_service.h"
#include "sim/message_bus.h"
#include "txn/transaction_service.h"

namespace rhodos::core {

struct FacilityConfig {
  std::uint32_t disk_count = 1;
  sim::DiskGeometry geometry{};
  // Optional per-disk geometry overrides by disk index (shorter than
  // disk_count is fine; missing entries use `geometry`). The replica-fault
  // bench uses this to model one slow replica among fast ones.
  std::vector<sim::DiskGeometry> per_disk_geometry{};
  std::size_t disk_cache_tracks = 16;
  bool track_readahead = true;
  disk::PlacementPolicy placement = disk::PlacementPolicy::kRoundRobin;
  file::FileServiceConfig file{};
  txn::TxnServiceConfig txn{};
  sim::NetworkConfig network{};
  agent::FileAgentConfig agent{};
  // Callback/lease coherence policy shared by every file-service shard.
  // Disabling it here also turns off the agents' callback participation.
  agent::CallbackConfig callback{};
  // Cache-tier read fan-out (E24): load-aware redirect of cold reads on hot
  // files to callback-holding peer agents. Off by default (opt-in trade:
  // one extra exchange per redirected miss for origin-disk relief); it
  // also requires callbacks to be enabled — peers can only vouch for
  // blocks a promise covers.
  agent::CacheTierConfig cache_tier{};
  replication::ReplicationConfig replication{};
  replication::AntiEntropyConfig anti_entropy{};
  // Metadata-plane partitioning; the default (1/1) is the paper topology.
  placement::ShardingConfig sharding{};
};

// One client workstation: its agents (paper §3: "on each machine, all
// client processes acquire the services ... through ... a file agent and a
// transaction agent"; "on each machine, there is one process called a
// device agent").
struct Machine {
  MachineId id;
  std::unique_ptr<agent::FileAgent> file_agent;
  std::unique_ptr<agent::DeviceAgent> device_agent;
  std::unique_ptr<agent::TransactionAgentHost> txn_agent;
};

class DistributedFileFacility {
 public:
  explicit DistributedFileFacility(FacilityConfig config = {});
  // Drains the final StatsSnapshot() into the global metrics drain when one
  // is installed (the bench harness's aggregation hook).
  ~DistributedFileFacility();

  DistributedFileFacility(const DistributedFileFacility&) = delete;
  DistributedFileFacility& operator=(const DistributedFileFacility&) = delete;

  // --- Layers ----------------------------------------------------------------

  SimClock& clock() { return clock_; }
  disk::DiskRegistry& disks() { return disks_; }
  // Shard 0's file service — THE file service of unsharded facilities.
  file::FileService& files() { return *file_shards_[0]; }
  file::FileService& files(std::uint32_t shard) {
    return *file_shards_.at(shard);
  }
  std::uint32_t file_shard_count() const {
    return static_cast<std::uint32_t>(file_shards_.size());
  }
  txn::TransactionService& transactions() { return *txns_; }
  placement::ShardedNamingService& naming() { return *naming_; }
  placement::ShardRouter& placement() { return *router_; }
  replication::ReplicationService& replication() { return *replication_; }
  replication::AntiEntropyScanner& anti_entropy() { return *anti_entropy_; }
  recovery::RecoveryManager& recovery() { return *recovery_; }
  recovery::FailureDetector& detector() { return *detector_; }
  sim::MessageBus& bus() { return bus_; }
  agent::FileServiceServer& file_server() { return *file_servers_[0]; }
  agent::FileServiceServer& file_server(std::uint32_t shard) {
    return *file_servers_.at(shard);
  }
  const FacilityConfig& config() const { return config_; }

  // --- Client machines and processes ------------------------------------------

  Machine& AddMachine();
  Machine& machine(std::size_t i) { return *machines_.at(i); }
  std::size_t MachineCount() const { return machines_.size(); }

  agent::ProcessContext CreateProcess();

  // Stream I/O that honours the redirection rules of §3: descriptors below
  // 100 000 go to the machine's device agent, above to its file agent.
  Result<std::uint64_t> WriteStream(Machine& m,
                                    const agent::ProcessContext& process,
                                    ObjectDescriptor stream,
                                    std::span<const std::uint8_t> data);
  Result<std::uint64_t> ReadStream(Machine& m,
                                   const agent::ProcessContext& process,
                                   ObjectDescriptor stream,
                                   std::span<std::uint8_t> out);

  // --- Whole-system failure model -----------------------------------------------

  // Server-side crash: the file service machine and every disk server lose
  // volatile state (caches, delayed writes, async stable queues).
  void CrashServers();

  // Brings disks and services back and runs transaction recovery.
  Status RecoverServers();

  // Single-disk failure controls (the chaos harness's knobs; also reachable
  // through FaultPlan kDiskCrash/kDiskRecover events on the bus).
  Status CrashDisk(DiskId disk);
  Status RecoverDisk(DiskId disk);

  // Network partition of a single disk server: I/O fails with kUnavailable
  // but volatile state survives, unlike CrashDisk. FaultPlan reaches these
  // through kDiskPartition/kDiskHeal events.
  Status PartitionDisk(DiskId disk);
  Status HealDisk(DiskId disk);

  void ResetStats();

  // --- Observability -----------------------------------------------------------

  // The facility-wide metrics registry + trace recorder. Tracing is off by
  // default; flip it on with observability().tracer.Enable(true).
  obs::Observability& observability() { return obs_; }

  // Folds every layer's cumulative stats into the registry and returns a
  // point-in-time copy. The name set is fixed at construction (see
  // docs/OBSERVABILITY.md), so two snapshots of any two facilities always
  // carry the same metric names.
  obs::MetricsSnapshot StatsSnapshot();

  // The operator's view: every metric as text (or one JSON object).
  std::string DumpStats(bool json = false);

 private:
  // Pre-declares the full metric catalogue (stable DumpStats schema) —
  // every name in docs/OBSERVABILITY.md originates here.
  void DeclareMetrics();
  // SetCounter/SetGauge the pull-model layer stats into the registry.
  void PullLayerStats();

  FacilityConfig config_;
  SimClock clock_;
  obs::Observability obs_{&clock_};
  sim::MessageBus bus_;
  disk::DiskRegistry disks_;
  std::unique_ptr<placement::ShardRouter> router_;
  // file_shards_[s] listens on router_->AddressOf(s); shard 0 keeps the
  // historic "file-service" address. The transaction and replication
  // services wrap shard 0 (transactional files stay unsharded).
  std::vector<std::unique_ptr<file::FileService>> file_shards_;
  std::unique_ptr<txn::TransactionService> txns_;
  std::unique_ptr<placement::ShardedNamingService> naming_;
  std::unique_ptr<replication::ReplicationService> replication_;
  std::unique_ptr<replication::AntiEntropyScanner> anti_entropy_;
  std::unique_ptr<recovery::RecoveryManager> recovery_;
  std::unique_ptr<recovery::FailureDetector> detector_;
  std::vector<std::unique_ptr<agent::FileServiceServer>> file_servers_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::uint64_t next_pid_{1};
};

// Address under which the facility's file service listens on the bus.
inline constexpr const char* kFileServiceAddress = "file-service";

}  // namespace rhodos::core
