// Share counts for copy-on-write block sharing (snapshots and clones).
//
// A block's share count is the number of file index tables whose run list
// references it. The map stores an entry ONLY for blocks with count >= 2:
// an allocated block absent from the map is exclusively owned (count 1),
// so the map's size is proportional to the amount of *sharing*, not to the
// amount of data. The invariant threaded through the facility is:
//
//   a block is freed exactly when its share count reaches zero, and share
//   counts are only ever changed under the snapshot journal.
//
// The map itself is volatile; durability comes from the SnapJournal, which
// logs absolute piece counts (idempotent to replay) and checkpoints the
// whole map when its log region fills.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/serializer.h"
#include "common/types.h"

namespace rhodos::file {

// A maximal sub-range of a probed run over which the share count is
// uniform. `first_fragment` is the first fragment of the piece's first
// block; `block_count` the number of blocks; `count` the share count
// (1 = exclusive).
struct SharePiece {
  DiskId disk;
  FragmentIndex first_fragment;
  std::uint32_t block_count;
  std::uint32_t count;
};

class ShareMap {
 public:
  // Share count of the single block whose first fragment is
  // `block_fragment` (1 if absent — exclusively owned or unallocated).
  std::uint32_t CountOf(DiskId disk, FragmentIndex block_fragment) const;

  // Decomposes the run of `block_count` blocks starting at
  // (disk, first_fragment) into maximal pieces of uniform share count.
  std::vector<SharePiece> Pieces(DiskId disk, FragmentIndex first_fragment,
                                 std::uint32_t block_count) const;

  // Sets the absolute share count of every block in the run. count <= 1
  // erases the entries (exclusive ownership is represented by absence).
  // Absolute, hence idempotent — the journal replays these at recovery.
  void SetCount(DiskId disk, FragmentIndex first_fragment,
                std::uint32_t block_count, std::uint32_t count);

  // Number of distinct blocks currently shared (count >= 2). Feeds the
  // file.shared_blocks gauge and fsck's expected-refcount computation.
  std::uint64_t SharedBlockCount() const { return counts_.size(); }

  // Iterates every shared block as single-block pieces (count >= 2 only).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, count] : counts_) {
      fn(DiskOf(key), FragmentOf(key), count);
    }
  }

  void Clear() { counts_.clear(); }

  // Checkpoint image: runs of adjacent blocks with equal counts are
  // coalesced, so the serialized size is O(shared runs), not O(blocks).
  void Serialize(Serializer& out) const;
  static ShareMap Deserialize(Deserializer& in);

 private:
  static std::uint64_t Key(DiskId disk, FragmentIndex fragment) {
    return (static_cast<std::uint64_t>(disk.value) << 40) |
           (fragment & ((1ULL << 40) - 1));
  }
  static DiskId DiskOf(std::uint64_t key) {
    return DiskId{static_cast<std::uint32_t>(key >> 40)};
  }
  static FragmentIndex FragmentOf(std::uint64_t key) {
    return key & ((1ULL << 40) - 1);
  }

  // Ordered so Serialize can coalesce physically adjacent blocks.
  std::map<std::uint64_t, std::uint32_t> counts_;
};

}  // namespace rhodos::file
