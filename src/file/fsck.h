// Consistency audit of the file facility ("fsck").
//
// The paper leans on several structural invariants — every block descriptor
// points at allocated space, no two files share fragments unless a snapshot
// or clone says so, the index table and its indirect blocks are parseable
// from disk. After crash recovery (or any time), the audit walks a set of
// files and verifies all of them against the disk servers' bitmaps and the
// snapshot share map, reporting exactly what a downstream administrator
// would want to know before trusting the volume.
//
// Sharing changes what "double allocation" means: a data block claimed by k
// files is legal exactly when the stored share count is k. The audit
// recomputes the claim count per block with multiplicity and compares it to
// the stored count:
//
//   * computed > stored  -> kRefcountLow  (a future release double-frees)
//   * computed < stored  -> kRefcountHigh (blocks leak; only reportable in
//     exhaustive mode, when the walk is known to cover every file)
//   * computed >= 2 with an unflagged claiming run -> kSharedFlagMissing
//     (a write would skip copy-on-write and corrupt the other holders)
//
// The reverse flag direction — kRunShared set while the count is 1 — is
// NOT an issue: flags are conservative and cleared lazily by the last
// owner's next write.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "file/file_service.h"

namespace rhodos::file {

struct AuditIssue {
  enum class Kind : std::uint8_t {
    kUnreadableTable,   // index table could not be loaded/parsed
    kDoubleAllocation,  // two files claim the same fragment (no sharing)
    kUnallocatedClaim,  // a file claims a fragment the bitmap says is free
    kSizeMismatch,      // attribute size exceeds mapped blocks
    kReservedOverlap,   // a file claims fragments inside a reserved region
    kRefcountLow,       // more claimants than the stored share count
    kRefcountHigh,      // stored share count exceeds the claimants found
    kSharedFlagMissing, // shared block whose claiming run lacks kRunShared
  };
  Kind kind;
  FileId file{};
  DiskId disk{};
  FragmentIndex fragment = 0;
  std::string detail;
};

// A fragment range no file may claim — e.g. the transaction service's
// intention-log region (TransactionService::log_region()) or the snapshot
// journal's tail region (SnapJournal::Region*()). The caller passes these
// because fsck sits below the layers that own them.
struct ReservedRegion {
  DiskId disk{};
  FragmentIndex first = 0;
  std::uint64_t fragments = 0;
};

struct AuditReport {
  std::uint64_t files_checked = 0;
  std::uint64_t fragments_claimed = 0;  // with multiplicity
  std::uint64_t shared_blocks = 0;      // blocks claimed by 2+ files
  std::uint64_t refcounts_checked = 0;  // blocks compared against the map
  std::vector<AuditIssue> issues;

  bool clean() const { return issues.empty(); }
  std::uint64_t CountOf(AuditIssue::Kind kind) const {
    std::uint64_t n = 0;
    for (const auto& i : issues) n += i.kind == kind ? 1 : 0;
    return n;
  }
};

// Audits `files` against the service's disks and share map. Read-only:
// never repairs. Any fragment a file claims inside one of `reserved` is
// reported as kReservedOverlap. With `exhaustive` set the caller asserts
// that `files` lists EVERY live file, which additionally arms the leak
// check (kRefcountHigh) — including stored counts for blocks no listed
// file claims at all.
AuditReport AuditFiles(FileService& service, std::span<const FileId> files,
                       std::span<const ReservedRegion> reserved = {},
                       bool exhaustive = false);

}  // namespace rhodos::file
