// Consistency audit of the file facility ("fsck").
//
// The paper leans on several structural invariants — every block descriptor
// points at allocated space, no two files share fragments, the index table
// and its indirect blocks are parseable from disk. After crash recovery
// (or any time), the audit walks a set of files and verifies all of them
// against the disk servers' bitmaps, reporting exactly what a downstream
// administrator would want to know before trusting the volume.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "file/file_service.h"

namespace rhodos::file {

struct AuditIssue {
  enum class Kind : std::uint8_t {
    kUnreadableTable,   // index table could not be loaded/parsed
    kDoubleAllocation,  // two files claim the same fragment
    kUnallocatedClaim,  // a file claims a fragment the bitmap says is free
    kSizeMismatch,      // attribute size exceeds mapped blocks
    kReservedOverlap,   // a file claims fragments inside a reserved region
  };
  Kind kind;
  FileId file{};
  DiskId disk{};
  FragmentIndex fragment = 0;
  std::string detail;
};

// A fragment range no file may claim — e.g. the transaction service's
// intention-log region (TransactionService::log_region()). The caller
// passes these because fsck sits below the layers that own them.
struct ReservedRegion {
  DiskId disk{};
  FragmentIndex first = 0;
  std::uint64_t fragments = 0;
};

struct AuditReport {
  std::uint64_t files_checked = 0;
  std::uint64_t fragments_claimed = 0;
  std::vector<AuditIssue> issues;

  bool clean() const { return issues.empty(); }
  std::uint64_t CountOf(AuditIssue::Kind kind) const {
    std::uint64_t n = 0;
    for (const auto& i : issues) n += i.kind == kind ? 1 : 0;
    return n;
  }
};

// Audits `files` against the service's disks. Read-only: never repairs.
// Any fragment a file claims inside one of `reserved` is reported as
// kReservedOverlap.
AuditReport AuditFiles(FileService& service, std::span<const FileId> files,
                       std::span<const ReservedRegion> reserved = {});

}  // namespace rhodos::file
