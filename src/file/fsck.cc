#include "file/fsck.h"

#include <map>
#include <unordered_map>

namespace rhodos::file {

namespace {

// A (disk, fragment) pair packed for hashing/ordering.
std::uint64_t Pack(DiskId disk, FragmentIndex f) {
  return (static_cast<std::uint64_t>(disk.value) << 40) | f;
}
DiskId PackDisk(std::uint64_t key) {
  return DiskId{static_cast<std::uint32_t>(key >> 40)};
}
FragmentIndex PackFragment(std::uint64_t key) {
  return key & ((1ULL << 40) - 1);
}

// Everything the walk learned about one data block.
struct BlockClaims {
  std::uint32_t claims = 0;    // claimants found, with multiplicity
  FileId first_file{};         // a claimant, for issue attribution
  FileId unflagged_file{};     // a claimant whose run lacks kRunShared
  bool has_unflagged = false;
};

}  // namespace

AuditReport AuditFiles(FileService& service, std::span<const FileId> files,
                       std::span<const ReservedRegion> reserved,
                       bool exhaustive) {
  AuditReport report;
  // Owner of each claimed CONTROL fragment (index tables, indirect blocks):
  // control data is never shared, so any collision is a double allocation.
  std::unordered_map<std::uint64_t, FileId> owners;
  // Claim census of DATA blocks (ordered, so adjacent blocks coalesce into
  // run-granular issues below). Data blocks may legally be multiply claimed
  // — the share map is the judge.
  std::map<std::uint64_t, BlockClaims> data_claims;

  auto check_common = [&](FileId file, DiskId disk, FragmentIndex f,
                          const char* what) {
    ++report.fragments_claimed;
    for (const ReservedRegion& r : reserved) {
      if (disk == r.disk && f >= r.first && f < r.first + r.fragments) {
        report.issues.push_back(AuditIssue{
            AuditIssue::Kind::kReservedOverlap, file, disk, f,
            std::string(what) + " lies inside a reserved region"});
      }
    }
    auto server = service.disks()->Get(disk);
    if (server.ok() && !(*server)->IsFragmentAllocated(f)) {
      report.issues.push_back(AuditIssue{
          AuditIssue::Kind::kUnallocatedClaim, file, disk, f,
          std::string(what) + " not marked allocated in the bitmap"});
    }
  };

  auto claim_control = [&](FileId file, DiskId disk, FragmentIndex first,
                           std::uint64_t count, const char* what) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const FragmentIndex f = first + i;
      check_common(file, disk, f, what);
      const std::uint64_t key = Pack(disk, f);
      if (auto it = owners.find(key); it != owners.end()) {
        report.issues.push_back(AuditIssue{
            AuditIssue::Kind::kDoubleAllocation, file, disk, f,
            std::string(what) + " also claimed by file " +
                std::to_string(it->second.value)});
      } else {
        owners.emplace(key, file);
      }
    }
  };

  auto claim_data = [&](FileId file, const BlockDescriptor& run) {
    for (std::uint32_t b = 0; b < run.contiguous_count; ++b) {
      const FragmentIndex block_first =
          run.first_fragment + static_cast<FragmentIndex>(b) *
                                   kFragmentsPerBlock;
      for (std::uint32_t i = 0; i < kFragmentsPerBlock; ++i) {
        check_common(file, run.disk, block_first + i, "data block");
        // Control/data collisions are never legal, shared or not.
        if (auto it = owners.find(Pack(run.disk, block_first + i));
            it != owners.end()) {
          report.issues.push_back(AuditIssue{
              AuditIssue::Kind::kDoubleAllocation, file, run.disk,
              block_first + i,
              "data block also claimed as control data by file " +
                  std::to_string(it->second.value)});
        }
      }
      BlockClaims& c = data_claims[Pack(run.disk, block_first)];
      if (c.claims == 0) c.first_file = file;
      ++c.claims;
      if (!run.shared()) {
        c.has_unflagged = true;
        c.unflagged_file = file;
      }
    }
  };

  for (FileId file : files) {
    ++report.files_checked;
    auto attrs = service.GetAttributes(file);
    if (!attrs.ok()) {
      report.issues.push_back(
          AuditIssue{AuditIssue::Kind::kUnreadableTable, file,
                     FileDisk(file), FileFitFragment(file),
                     attrs.error().ToString()});
      continue;
    }
    // The index table fragment itself.
    claim_control(file, FileDisk(file), FileFitFragment(file), 1,
                  "index table");
    // Indirect blocks.
    auto indirect = service.IndirectBlockLocations(file);
    if (indirect.ok()) {
      for (const auto& ib : *indirect) {
        claim_control(file, ib.disk, ib.first_fragment, kFragmentsPerBlock,
                      "indirect block");
      }
    }
    // Data runs.
    auto runs = service.FileRuns(file);
    std::uint64_t mapped_blocks = 0;
    if (runs.ok()) {
      for (const auto& run : *runs) {
        claim_data(file, run);
        mapped_blocks += run.contiguous_count;
      }
    }
    // Size must be coverable by the mapped blocks.
    if (attrs->size > mapped_blocks * kBlockSize) {
      report.issues.push_back(AuditIssue{
          AuditIssue::Kind::kSizeMismatch, file, FileDisk(file), 0,
          "size " + std::to_string(attrs->size) + " exceeds " +
              std::to_string(mapped_blocks) + " mapped blocks"});
    }
  }

  // --- Reconcile the claim census against the stored share counts ----------
  // Without a snapshot journal on disk every stored count reads as 1 and
  // any multiple claim is a plain double allocation.
  bool have_map = service.snap_journal().loaded();
  if (!have_map) {
    if (auto present = service.snap_journal().Probe();
        present.ok() && *present) {
      have_map = service.snap_journal().Ensure().ok();
    }
  }
  const ShareMap* map = have_map ? &service.snap_journal().map() : nullptr;

  // Run-granular reporting: adjacent blocks with the same defect and the
  // same owning file collapse into one issue naming the whole run.
  struct OpenIssue {
    AuditIssue::Kind kind;
    FileId file;
    std::uint64_t first_key = 0;
    std::uint64_t last_key = 0;
    std::uint32_t blocks = 0;
    std::uint32_t computed = 0;
    std::uint32_t stored = 0;
  };
  std::vector<OpenIssue> pending;
  auto add = [&pending](AuditIssue::Kind kind, FileId file,
                        std::uint64_t key, std::uint32_t computed,
                        std::uint32_t stored) {
    if (!pending.empty()) {
      OpenIssue& last = pending.back();
      if (last.kind == kind && last.file == file &&
          last.last_key + kFragmentsPerBlock == key &&
          last.computed == computed && last.stored == stored) {
        last.last_key = key;
        ++last.blocks;
        return;
      }
    }
    pending.push_back(OpenIssue{kind, file, key, key, 1, computed, stored});
  };

  for (const auto& [key, c] : data_claims) {
    const std::uint32_t stored =
        map ? map->CountOf(PackDisk(key), PackFragment(key)) : 1;
    ++report.refcounts_checked;
    if (c.claims >= 2) ++report.shared_blocks;
    if (c.claims > stored) {
      add(AuditIssue::Kind::kRefcountLow, c.first_file, key, c.claims,
          stored);
    } else if (exhaustive && c.claims < stored) {
      add(AuditIssue::Kind::kRefcountHigh, c.first_file, key, c.claims,
          stored);
    }
    if (c.claims >= 2 && c.has_unflagged) {
      add(AuditIssue::Kind::kSharedFlagMissing, c.unflagged_file, key,
          c.claims, stored);
    }
  }
  if (exhaustive && map != nullptr) {
    // Stored counts for blocks no listed file claims at all: pure leaks.
    map->ForEach([&](DiskId disk, FragmentIndex frag, std::uint32_t stored) {
      const std::uint64_t key = Pack(disk, frag);
      if (data_claims.find(key) == data_claims.end()) {
        add(AuditIssue::Kind::kRefcountHigh, FileId{}, key, 0, stored);
      }
    });
  }
  for (const OpenIssue& p : pending) {
    const char* what =
        p.kind == AuditIssue::Kind::kRefcountLow
            ? "stored share count below the claimants found"
        : p.kind == AuditIssue::Kind::kRefcountHigh
            ? "stored share count exceeds the claimants found"
            : "shared block claimed by a run without the shared flag";
    report.issues.push_back(AuditIssue{
        p.kind, p.file, PackDisk(p.first_key), PackFragment(p.first_key),
        std::string(what) + ": block run at fragment " +
            std::to_string(PackFragment(p.first_key)) + " x" +
            std::to_string(p.blocks) + " blocks, " +
            std::to_string(p.computed) + " claimed vs " +
            std::to_string(p.stored) + " stored"});
  }
  return report;
}

}  // namespace rhodos::file
