#include "file/fsck.h"

#include <unordered_map>

namespace rhodos::file {

namespace {

// A (disk, fragment) pair packed for hashing.
std::uint64_t Pack(DiskId disk, FragmentIndex f) {
  return (static_cast<std::uint64_t>(disk.value) << 40) | f;
}

}  // namespace

AuditReport AuditFiles(FileService& service, std::span<const FileId> files,
                       std::span<const ReservedRegion> reserved) {
  AuditReport report;
  // Owner of each claimed fragment, for double-allocation detection.
  std::unordered_map<std::uint64_t, FileId> owners;

  auto claim = [&](FileId file, DiskId disk, FragmentIndex first,
                   std::uint64_t count, const char* what) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const FragmentIndex f = first + i;
      ++report.fragments_claimed;
      for (const ReservedRegion& r : reserved) {
        if (disk == r.disk && f >= r.first && f < r.first + r.fragments) {
          report.issues.push_back(AuditIssue{
              AuditIssue::Kind::kReservedOverlap, file, disk, f,
              std::string(what) + " lies inside a reserved region"});
        }
      }
      const std::uint64_t key = Pack(disk, f);
      if (auto it = owners.find(key); it != owners.end()) {
        report.issues.push_back(AuditIssue{
            AuditIssue::Kind::kDoubleAllocation, file, disk, f,
            std::string(what) + " also claimed by file " +
                std::to_string(it->second.value)});
      } else {
        owners.emplace(key, file);
      }
      auto server = service.disks()->Get(disk);
      if (server.ok() && !(*server)->IsFragmentAllocated(f)) {
        report.issues.push_back(AuditIssue{
            AuditIssue::Kind::kUnallocatedClaim, file, disk, f,
            std::string(what) + " not marked allocated in the bitmap"});
      }
    }
  };

  for (FileId file : files) {
    ++report.files_checked;
    auto attrs = service.GetAttributes(file);
    if (!attrs.ok()) {
      report.issues.push_back(
          AuditIssue{AuditIssue::Kind::kUnreadableTable, file,
                     FileDisk(file), FileFitFragment(file),
                     attrs.error().ToString()});
      continue;
    }
    // The index table fragment itself.
    claim(file, FileDisk(file), FileFitFragment(file), 1, "index table");
    // Indirect blocks.
    auto indirect = service.IndirectBlockLocations(file);
    if (indirect.ok()) {
      for (const auto& ib : *indirect) {
        claim(file, ib.disk, ib.first_fragment, kFragmentsPerBlock,
              "indirect block");
      }
    }
    // Data runs.
    auto runs = service.FileRuns(file);
    std::uint64_t mapped_blocks = 0;
    if (runs.ok()) {
      for (const auto& run : *runs) {
        claim(file, run.disk, run.first_fragment,
              static_cast<std::uint64_t>(run.contiguous_count) *
                  kFragmentsPerBlock,
              "data block");
        mapped_blocks += run.contiguous_count;
      }
    }
    // Size must be coverable by the mapped blocks.
    if (attrs->size > mapped_blocks * kBlockSize) {
      report.issues.push_back(AuditIssue{
          AuditIssue::Kind::kSizeMismatch, file, FileDisk(file), 0,
          "size " + std::to_string(attrs->size) + " exceeds " +
              std::to_string(mapped_blocks) + " mapped blocks"});
    }
  }
  return report;
}

}  // namespace rhodos::file
