#include "file/snap_journal.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace rhodos::file {

namespace {

constexpr std::uint32_t kLogMagic = 0x52534E4C;   // "RSNL"
constexpr std::uint32_t kCkptMagic = 0x52534E43;  // "RSNC"
constexpr std::uint8_t kPayloadOp = 1;
constexpr std::uint8_t kPayloadDone = 2;

std::uint64_t Fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void SerializeSnapOp(Serializer& out, const SnapOp& op) {
  out.U64(op.seq);
  out.U8(static_cast<std::uint8_t>(op.kind));
  out.U64(op.file.value);
  out.U64(op.source.value);
  out.U8(op.image_flags);
  out.U64(op.first_block);
  out.U32(op.block_count);
  out.U32(op.new_disk.value);
  out.U64(op.new_fragment);
  out.U8(op.rebind ? 1 : 0);
  out.U8(op.scrub_fit ? 1 : 0);
  out.U8(op.truncate ? 1 : 0);
  out.U32(static_cast<std::uint32_t>(op.ref_edits.size()));
  for (const auto& e : op.ref_edits) {
    out.U32(e.disk.value);
    out.U64(e.first_fragment);
    out.U32(e.block_count);
    out.U32(e.count);
  }
  out.U32(static_cast<std::uint32_t>(op.frees.size()));
  for (const auto& f : op.frees) {
    out.U32(f.disk.value);
    out.U64(f.first_fragment);
    out.U32(f.fragment_count);
  }
}

Result<SnapOp> DeserializeSnapOp(Deserializer& in) {
  SnapOp op;
  op.seq = in.U64();
  op.kind = static_cast<SnapOpKind>(in.U8());
  op.file = FileId{in.U64()};
  op.source = FileId{in.U64()};
  op.image_flags = in.U8();
  op.first_block = in.U64();
  op.block_count = in.U32();
  op.new_disk = DiskId{in.U32()};
  op.new_fragment = in.U64();
  op.rebind = in.U8() != 0;
  op.scrub_fit = in.U8() != 0;
  op.truncate = in.U8() != 0;
  const std::uint32_t n_edits = in.U32();
  if (!in.ok() || n_edits > 1u << 20) {
    return Error{ErrorCode::kMediaError, "corrupt snap op"};
  }
  for (std::uint32_t i = 0; i < n_edits; ++i) {
    SnapRefEdit e;
    e.disk = DiskId{in.U32()};
    e.first_fragment = in.U64();
    e.block_count = in.U32();
    e.count = in.U32();
    op.ref_edits.push_back(e);
  }
  const std::uint32_t n_frees = in.U32();
  if (!in.ok() || n_frees > 1u << 20) {
    return Error{ErrorCode::kMediaError, "corrupt snap op"};
  }
  for (std::uint32_t i = 0; i < n_frees; ++i) {
    SnapFree f;
    f.disk = DiskId{in.U32()};
    f.first_fragment = in.U64();
    f.fragment_count = in.U32();
    op.frees.push_back(f);
  }
  if (!in.ok()) return Error{ErrorCode::kMediaError, "truncated snap op"};
  return op;
}

SnapJournal::SnapJournal(disk::DiskRegistry* disks,
                         std::uint64_t region_fragments, std::uint32_t slot)
    : disks_(disks), region_fragments_(region_fragments), slot_(slot) {}

Result<bool> SnapJournal::Probe() {
  if (loaded_) return true;
  RHODOS_ASSIGN_OR_RETURN(disk::DiskServer * server,
                          disks_->Get(RegionDisk()));
  const std::uint64_t total = server->TotalFragmentCount();
  const std::uint64_t span = region_fragments_ * (slot_ + 1);
  if (span + server->MetadataFragments() >= total) return false;
  const FragmentIndex first = total - span;
  if (!server->IsFragmentAllocated(first)) return false;
  const std::uint64_t slot_frags = region_fragments_ / 8;
  std::vector<std::uint8_t> buf(slot_frags * kFragmentSize);
  for (std::uint8_t s = 0; s < 2; ++s) {
    if (!server
             ->GetBlock(first + s * slot_frags,
                        static_cast<std::uint32_t>(slot_frags), buf,
                        disk::ReadSource::kStable)
             .ok()) {
      continue;
    }
    if (GetU32(buf.data()) != kCkptMagic) continue;
    const std::uint32_t len = GetU32(buf.data() + 4);
    if (8 + len + 8 > buf.size()) continue;
    if (GetU64(buf.data() + 8 + len) ==
        Fnv1a({buf.data() + 8, len})) {
      return true;
    }
  }
  return false;
}

Status SnapJournal::Ensure() {
  if (loaded_) return OkStatus();
  RHODOS_ASSIGN_OR_RETURN(disk::DiskServer * server,
                          disks_->Get(RegionDisk()));
  const std::uint64_t total = server->TotalFragmentCount();
  const std::uint64_t span = region_fragments_ * (slot_ + 1);
  if (span + server->MetadataFragments() >= total) {
    return {ErrorCode::kNoSpace, "disk too small for snapshot journal"};
  }
  region_first_ = total - span;
  ckpt_slot_fragments_ = region_fragments_ / 8;
  log_first_ = region_first_ + 2 * ckpt_slot_fragments_;
  log_bytes_ =
      (region_fragments_ - 2 * ckpt_slot_fragments_) * kFragmentSize;

  map_.Clear();
  log_image_.assign(log_bytes_, 0);
  head_ = 0;
  next_seq_ = 1;
  ckpt_seq_ = 0;
  ckpt_slot_ = 0;
  pending_seqs_.clear();
  pending_ops_.clear();

  if (server->AllocateSpecific(region_first_, static_cast<std::uint32_t>(
                                                  region_fragments_))
          .ok()) {
    // Fresh claim. Make the claim itself durable immediately: apply-side
    // PersistMetadata calls hit the mutated file's disk, which need not be
    // this one, and a recovered bitmap without this range would let file
    // data pave over the journal.
    RHODOS_RETURN_IF_ERROR(server->PersistMetadata());
    RHODOS_RETURN_IF_ERROR(WriteCheckpoint());
    loaded_ = true;
    return OkStatus();
  }

  // Adopt: the region is already allocated (survived a restart). Load the
  // freshest valid checkpoint of the two slots, then replay the log over it.
  std::uint64_t best_gen = 0;
  bool have_ckpt = false;
  std::vector<std::uint8_t> slot_buf(ckpt_slot_fragments_ * kFragmentSize);
  for (std::uint8_t s = 0; s < 2; ++s) {
    const Status st = server->GetBlock(
        region_first_ + s * ckpt_slot_fragments_,
        static_cast<std::uint32_t>(ckpt_slot_fragments_), slot_buf,
        disk::ReadSource::kStable);
    if (!st.ok()) continue;
    if (GetU32(slot_buf.data()) != kCkptMagic) continue;
    const std::uint32_t len = GetU32(slot_buf.data() + 4);
    if (8 + len + 8 > slot_buf.size()) continue;
    const std::span<const std::uint8_t> payload{slot_buf.data() + 8, len};
    if (GetU64(slot_buf.data() + 8 + len) != Fnv1a(payload)) continue;
    Deserializer in{payload};
    const std::uint64_t gen = in.U64();
    ShareMap map = ShareMap::Deserialize(in);
    if (!in.ok()) continue;
    if (!have_ckpt || gen > best_gen) {
      best_gen = gen;
      map_ = std::move(map);
      ckpt_slot_ = static_cast<std::uint8_t>((s + 1) % 2);
      have_ckpt = true;
    }
  }
  if (!have_ckpt) {
    // Claimed but never initialized (crash in the claim window): start
    // empty. Committed ops always live behind a valid checkpoint, so an
    // unreadable checkpoint here can only mean nothing was ever logged.
    RHODOS_RETURN_IF_ERROR(WriteCheckpoint());
    loaded_ = true;
    return OkStatus();
  }
  ckpt_seq_ = best_gen;

  RHODOS_RETURN_IF_ERROR(server->GetBlock(
      log_first_, static_cast<std::uint32_t>(log_bytes_ / kFragmentSize),
      log_image_, disk::ReadSource::kStable));
  std::uint64_t pos = 0;
  std::map<std::uint64_t, SnapOp> ops;
  while (pos + 16 <= log_bytes_) {
    if (GetU32(log_image_.data() + pos) != kLogMagic) break;
    const std::uint32_t len = GetU32(log_image_.data() + pos + 4);
    if (len == 0 || pos + 16 + len > log_bytes_) {
      ++stats_.torn_records_skipped;
      break;
    }
    const std::span<const std::uint8_t> payload{log_image_.data() + pos + 8,
                                                len};
    if (GetU64(log_image_.data() + pos + 8 + len) != Fnv1a(payload)) {
      // A torn tail force: the op never committed (LogOp returns only
      // after a clean force), so stopping here is all-or-nothing.
      ++stats_.torn_records_skipped;
      break;
    }
    Deserializer in{payload};
    const std::uint8_t type = in.U8();
    if (type == kPayloadOp) {
      auto op = DeserializeSnapOp(in);
      if (!op.ok()) {
        ++stats_.torn_records_skipped;
        break;
      }
      // Absolute piece counts: replaying the whole log in order (even ops
      // already folded into the checkpoint) converges to the final state.
      for (const auto& e : op->ref_edits) {
        map_.SetCount(e.disk, e.first_fragment, e.block_count, e.count);
      }
      next_seq_ = std::max(next_seq_, op->seq + 1);
      ops.emplace(op->seq, std::move(*op));
      ++stats_.replayed_ops;
    } else if (type == kPayloadDone) {
      const std::uint64_t seq = in.U64();
      ops.erase(seq);
      next_seq_ = std::max(next_seq_, seq + 1);
    } else {
      ++stats_.torn_records_skipped;
      break;
    }
    pos += 16 + len;
  }
  head_ = pos;
  std::memset(log_image_.data() + head_, 0, log_bytes_ - head_);
  for (auto& [seq, op] : ops) {
    pending_seqs_.insert(seq);
    pending_ops_.push_back(std::move(op));
  }
  loaded_ = true;
  return OkStatus();
}

Status SnapJournal::ForceLog(std::uint64_t begin_byte,
                             std::uint64_t end_byte) {
  RHODOS_ASSIGN_OR_RETURN(disk::DiskServer * server,
                          disks_->Get(RegionDisk()));
  const std::uint64_t first_frag = begin_byte / kFragmentSize;
  const std::uint64_t last_frag = (end_byte - 1) / kFragmentSize;
  const std::uint64_t frags = last_frag - first_frag + 1;
  ++stats_.forces;
  return server->PutBlock(
      log_first_ + first_frag, static_cast<std::uint32_t>(frags),
      std::span<const std::uint8_t>{
          log_image_.data() + first_frag * kFragmentSize,
          frags * kFragmentSize},
      disk::StableMode::kStableOnly, disk::WriteSync::kSynchronous);
}

Status SnapJournal::AppendRecord(std::span<const std::uint8_t> payload) {
  const std::uint64_t frame_bytes = 16 + payload.size();
  if (head_ + frame_bytes > log_bytes_) {
    if (!pending_seqs_.empty()) {
      return {ErrorCode::kNoSpace,
              "snapshot journal full with operations in flight"};
    }
    RHODOS_RETURN_IF_ERROR(WriteCheckpoint());
    if (head_ + frame_bytes > log_bytes_) {
      return {ErrorCode::kNoSpace, "snapshot op larger than journal"};
    }
  }
  Serializer frame;
  frame.U32(kLogMagic);
  frame.U32(static_cast<std::uint32_t>(payload.size()));
  std::uint8_t* at = log_image_.data() + head_;
  std::memcpy(at, frame.buffer().data(), 8);
  std::memcpy(at + 8, payload.data(), payload.size());
  Serializer sum;
  sum.U64(Fnv1a(payload));
  std::memcpy(at + 8 + payload.size(), sum.buffer().data(), 8);
  const std::uint64_t begin = head_;
  head_ += frame_bytes;
  return ForceLog(begin, head_);
}

Result<std::uint64_t> SnapJournal::LogOp(SnapOp& op) {
  RHODOS_RETURN_IF_ERROR(Ensure());
  op.seq = next_seq_++;
  Serializer payload;
  payload.U8(kPayloadOp);
  SerializeSnapOp(payload, op);
  RHODOS_RETURN_IF_ERROR(AppendRecord(payload.buffer()));
  // The force above is the commit point; the map reflects it immediately.
  for (const auto& e : op.ref_edits) {
    map_.SetCount(e.disk, e.first_fragment, e.block_count, e.count);
  }
  pending_seqs_.insert(op.seq);
  ++stats_.ops_logged;
  return op.seq;
}

Status SnapJournal::LogDone(std::uint64_t seq) {
  RHODOS_RETURN_IF_ERROR(Ensure());
  Serializer payload;
  payload.U8(kPayloadDone);
  payload.U64(seq);
  RHODOS_RETURN_IF_ERROR(AppendRecord(payload.buffer()));
  pending_seqs_.erase(seq);
  ++stats_.dones_logged;
  // Fold the log into a checkpoint at quiescence, before it fills.
  if (pending_seqs_.empty() && head_ > (log_bytes_ / 4) * 3) {
    RHODOS_RETURN_IF_ERROR(WriteCheckpoint());
  }
  return OkStatus();
}

Status SnapJournal::WriteCheckpoint() {
  RHODOS_ASSIGN_OR_RETURN(disk::DiskServer * server,
                          disks_->Get(RegionDisk()));
  Serializer payload;
  payload.U64(next_seq_);  // strictly grows: freshest slot wins at adopt
  map_.Serialize(payload);
  const std::uint64_t slot_bytes = ckpt_slot_fragments_ * kFragmentSize;
  if (8 + payload.size() + 8 > slot_bytes) {
    return {ErrorCode::kNoSpace, "share map exceeds checkpoint slot"};
  }
  std::vector<std::uint8_t> buf(slot_bytes, 0);
  Serializer header;
  header.U32(kCkptMagic);
  header.U32(static_cast<std::uint32_t>(payload.size()));
  std::memcpy(buf.data(), header.buffer().data(), 8);
  std::memcpy(buf.data() + 8, payload.buffer().data(), payload.size());
  Serializer sum;
  sum.U64(Fnv1a(payload.buffer()));
  std::memcpy(buf.data() + 8 + payload.size(), sum.buffer().data(), 8);
  ++stats_.forces;
  RHODOS_RETURN_IF_ERROR(server->PutBlock(
      region_first_ + ckpt_slot_ * ckpt_slot_fragments_,
      static_cast<std::uint32_t>(ckpt_slot_fragments_), buf,
      disk::StableMode::kStableOnly, disk::WriteSync::kSynchronous));
  ckpt_slot_ = static_cast<std::uint8_t>((ckpt_slot_ + 1) % 2);
  ckpt_seq_ = next_seq_;
  ++stats_.checkpoints;
  // Reset the log: head to zero, and invalidate the old first record on
  // stable storage so an adopt after crash does not replay the stale log
  // over the new checkpoint's generation... which would still converge
  // (absolute counts), but pending detection must not resurrect old ops.
  head_ = 0;
  std::fill(log_image_.begin(), log_image_.end(), 0);
  ++stats_.forces;
  return server->PutBlock(
      log_first_, 1,
      std::span<const std::uint8_t>{log_image_.data(), kFragmentSize},
      disk::StableMode::kStableOnly, disk::WriteSync::kSynchronous);
}

std::vector<SnapOp> SnapJournal::TakePending() {
  std::vector<SnapOp> out = std::move(pending_ops_);
  pending_ops_.clear();
  return out;
}

void SnapJournal::Reset() {
  loaded_ = false;
  map_.Clear();
  log_image_.clear();
  head_ = 0;
  next_seq_ = 1;
  ckpt_seq_ = 0;
  ckpt_slot_ = 0;
  pending_seqs_.clear();
  pending_ops_.clear();
}

}  // namespace rhodos::file
