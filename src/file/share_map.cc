#include "file/share_map.h"

#include <array>

namespace rhodos::file {

std::uint32_t ShareMap::CountOf(DiskId disk,
                                FragmentIndex block_fragment) const {
  const auto it = counts_.find(Key(disk, block_fragment));
  return it == counts_.end() ? 1 : it->second;
}

std::vector<SharePiece> ShareMap::Pieces(DiskId disk,
                                         FragmentIndex first_fragment,
                                         std::uint32_t block_count) const {
  std::vector<SharePiece> pieces;
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const FragmentIndex frag = first_fragment + b * kFragmentsPerBlock;
    const std::uint32_t count = CountOf(disk, frag);
    if (!pieces.empty() && pieces.back().count == count) {
      ++pieces.back().block_count;
    } else {
      pieces.push_back(SharePiece{disk, frag, 1, count});
    }
  }
  return pieces;
}

void ShareMap::SetCount(DiskId disk, FragmentIndex first_fragment,
                        std::uint32_t block_count, std::uint32_t count) {
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const std::uint64_t key =
        Key(disk, first_fragment + b * kFragmentsPerBlock);
    if (count <= 1) {
      counts_.erase(key);
    } else {
      counts_[key] = count;
    }
  }
}

void ShareMap::Serialize(Serializer& out) const {
  // Coalesce adjacent blocks with equal counts into (key, blocks, count)
  // triples. The map is ordered by packed key, so physical adjacency on
  // one disk is textual adjacency here.
  std::vector<std::array<std::uint64_t, 3>> entries;
  for (const auto& [key, count] : counts_) {
    if (!entries.empty() &&
        entries.back()[0] + entries.back()[1] * kFragmentsPerBlock == key &&
        entries.back()[2] == count) {
      ++entries.back()[1];
    } else {
      entries.push_back({key, 1, count});
    }
  }
  out.U32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    out.U64(e[0]);
    out.U32(static_cast<std::uint32_t>(e[1]));
    out.U32(static_cast<std::uint32_t>(e[2]));
  }
}

ShareMap ShareMap::Deserialize(Deserializer& in) {
  ShareMap map;
  const std::uint32_t n = in.U32();
  for (std::uint32_t i = 0; i < n && in.ok(); ++i) {
    const std::uint64_t key = in.U64();
    const std::uint32_t blocks = in.U32();
    const std::uint32_t count = in.U32();
    for (std::uint32_t b = 0; b < blocks; ++b) {
      map.counts_[key + b * kFragmentsPerBlock] = count;
    }
  }
  return map;
}

}  // namespace rhodos::file
