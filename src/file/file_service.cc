#include "file/file_service.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <utility>

#include "sim/parallel.h"

namespace rhodos::file {

using disk::DiskServer;
using disk::ReadSource;
using disk::StableMode;
using disk::WritePolicy;
using disk::WriteSync;

FileService::FileService(disk::DiskRegistry* disks, SimClock* clock,
                         FileServiceConfig config)
    : disks_(disks),
      clock_(clock),
      config_(config),
      snap_journal_(disks, config.snapshot_region_fragments,
                    config.snapshot_region_slot),
      block_pool_(kBlockSize, config.block_pool_capacity),
      fragment_pool_(kFragmentSize, config.fragment_pool_capacity) {}

WritePolicy FileService::PolicyFor(const OpenFile& of) const {
  // "The delayed-write together with write-through policies are adapted to
  // save modifications made to data cached by the file service" (§5): basic
  // files follow the configured delayed policy; transaction files write
  // through so commits reach the platter when the transaction says so.
  return of.table.attributes().service_type == ServiceType::kTransaction
             ? WritePolicy::kWriteThrough
             : config_.basic_write_policy;
}

// --- Index-table load/store ---------------------------------------------------

Result<FileService::OpenFile*> FileService::LoadTable(FileId id) {
  if (auto it = open_files_.find(id); it != open_files_.end()) {
    return &it->second;
  }
  RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(FileDisk(id)));
  std::vector<std::uint8_t> fragment(kFragmentSize);
  RHODOS_RETURN_IF_ERROR(
      server->GetBlock(FileFitFragment(id), 1, fragment));
  auto parsed = ParseFitFragment(fragment);
  if (!parsed.ok()) {
    // The main copy is damaged; the paper keeps every index table on stable
    // storage, so fall back to the mirror.
    RHODOS_RETURN_IF_ERROR(server->GetBlock(FileFitFragment(id), 1, fragment,
                                            ReadSource::kStable));
    parsed = ParseFitFragment(fragment);
    if (!parsed.ok()) return Error{parsed.error()};
  }
  OpenFile of;
  of.table = std::move(parsed->table);
  of.indirect_blocks = std::move(parsed->indirect_blocks);
  // Pull in the indirect runs (one get_block per indirect block).
  std::vector<std::uint8_t> block(kBlockSize);
  for (const auto& ib : of.indirect_blocks) {
    RHODOS_ASSIGN_OR_RETURN(DiskServer * ib_server, disks_->Get(ib.disk));
    RHODOS_RETURN_IF_ERROR(server == ib_server
                               ? server->GetBlock(ib.first_fragment,
                                                  kFragmentsPerBlock, block)
                               : ib_server->GetBlock(ib.first_fragment,
                                                     kFragmentsPerBlock,
                                                     block));
    RHODOS_RETURN_IF_ERROR(of.table.ParseIndirectBlock(block));
  }
  ++stats_.fit_loads;
  auto [it, inserted] = open_files_.emplace(id, std::move(of));
  (void)inserted;
  return &it->second;
}

Status FileService::StoreTable(FileId id, OpenFile& of) {
  RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(FileDisk(id)));

  // Provision (or release) indirect blocks to match the run count.
  const std::size_t needed = of.table.IndirectBlockCount();
  if (needed > kIndirectRefs) {
    return {ErrorCode::kFileTooLarge,
            "file needs " + std::to_string(needed) +
                " indirect blocks; max " + std::to_string(kIndirectRefs)};
  }
  while (of.indirect_blocks.size() < needed) {
    auto frag = server->AllocateBlocks(1);
    if (frag.ok()) {
      of.indirect_blocks.push_back(
          BlockDescriptor{server->id(), *frag, 1});
    } else {
      RHODOS_ASSIGN_OR_RETURN(auto placement,
                              disks_->Allocate(kFragmentsPerBlock));
      of.indirect_blocks.push_back(
          BlockDescriptor{placement.disk, placement.first, 1});
    }
  }
  while (of.indirect_blocks.size() > needed) {
    const BlockDescriptor ib = of.indirect_blocks.back();
    of.indirect_blocks.pop_back();
    RHODOS_RETURN_IF_ERROR(
        disks_->Free(ib.disk, ib.first_fragment, kFragmentsPerBlock));
  }

  // Indirect blocks first, then the table fragment that references them —
  // so a crash between the two leaves the old (still valid) table in place.
  for (std::size_t i = 0; i < needed; ++i) {
    const std::vector<std::uint8_t> block = of.table.SerializeIndirectBlock(i);
    RHODOS_ASSIGN_OR_RETURN(DiskServer * ib_server,
                            disks_->Get(of.indirect_blocks[i].disk));
    RHODOS_RETURN_IF_ERROR(ib_server->PutBlock(
        of.indirect_blocks[i].first_fragment, kFragmentsPerBlock, block,
        StableMode::kOriginalAndStable, WriteSync::kSynchronous));
  }

  Serializer ser;
  of.table.SerializeFragment(ser, of.indirect_blocks);
  std::vector<std::uint8_t> fragment(kFragmentSize, 0);
  std::memcpy(fragment.data(), ser.buffer().data(), ser.size());
  RHODOS_RETURN_IF_ERROR(server->PutBlock(
      FileFitFragment(id), 1, fragment, StableMode::kOriginalAndStable,
      WriteSync::kSynchronous));
  of.table_dirty = false;
  of.attrs_dirty = false;
  ++stats_.fit_stores;
  return OkStatus();
}

// --- create / delete / open / close -------------------------------------------

Result<FileId> FileService::Create(ServiceType type,
                                   std::uint64_t size_hint) {
  const std::uint64_t hint_blocks =
      (size_hint + kBlockSize - 1) / kBlockSize;
  // "The file index table and at least the first data block are always
  // contiguous thus eliminating the seek time to retrieve the first data
  // block" (§5): allocate table fragment + initial data in ONE run.
  const std::uint32_t want =
      static_cast<std::uint32_t>(1 + hint_blocks * kFragmentsPerBlock);

  auto placement = disks_->Allocate(want);
  std::uint64_t preallocated_blocks = hint_blocks;
  if (!placement.ok() && want > 1) {
    // Could not get table + hint contiguously; take just the table fragment
    // (plus first block if possible) and let Grow place the rest.
    placement = disks_->Allocate(1 + kFragmentsPerBlock);
    preallocated_blocks = placement.ok() ? 1 : 0;
    if (!placement.ok()) placement = disks_->Allocate(1);
  }
  if (!placement.ok()) return Error{placement.error()};

  const FileId id = MakeFileId(placement->disk, placement->first);
  OpenFile of;
  of.table.attributes().service_type = type;
  of.table.attributes().created_time = clock_ ? clock_->Now() : 0;
  if (preallocated_blocks > 0) {
    RHODOS_RETURN_IF_ERROR(of.table.AppendRun(
        placement->disk, placement->first + 1,
        static_cast<std::uint32_t>(preallocated_blocks)));
  }
  if (preallocated_blocks < hint_blocks) {
    RHODOS_RETURN_IF_ERROR(
        Grow(id, of, hint_blocks - preallocated_blocks));
  }
  RHODOS_RETURN_IF_ERROR(StoreTable(id, of));
  RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(placement->disk));
  RHODOS_RETURN_IF_ERROR(server->PersistMetadata(WriteSync::kAsynchronous));
  open_files_.emplace(id, std::move(of));
  return id;
}

Status FileService::Delete(FileId id) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  if (of->table.HasSharedRuns()) {
    // Some of this file's blocks may belong to snapshots or clones too: a
    // block is freed exactly when its share count reaches zero, and share
    // counts only change under the snapshot journal. One journaled release
    // makes the scrub + decrements + frees a single all-or-nothing unit.
    RHODOS_RETURN_IF_ERROR(snap_journal_.Ensure());
    SnapOp op;
    op.kind = SnapOpKind::kRelease;
    op.file = id;
    op.scrub_fit = true;
    for (const auto& run : of->table.runs()) BuildRelease(run, op);
    for (const auto& ib : of->indirect_blocks) {
      op.frees.push_back(
          SnapFree{ib.disk, ib.first_fragment, kFragmentsPerBlock});
    }
    op.frees.push_back(SnapFree{FileDisk(id), FileFitFragment(id), 1});
    RHODOS_ASSIGN_OR_RETURN(const std::uint64_t seq, snap_journal_.LogOp(op));
    RHODOS_RETURN_IF_ERROR(ApplySnapOp(op));
    RHODOS_RETURN_IF_ERROR(snap_journal_.LogDone(seq));
    ++stats_.shared_releases;
    return OkStatus();
  }
  // Scrub the index table (both copies) so the stale bytes can never be
  // parsed back into a live file after the fragment is reused.
  {
    RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(FileDisk(id)));
    const std::vector<std::uint8_t> zeros(kFragmentSize, 0);
    RHODOS_RETURN_IF_ERROR(server->PutBlock(
        FileFitFragment(id), 1, zeros, StableMode::kOriginalAndStable,
        WriteSync::kSynchronous));
  }
  // Free data runs, indirect blocks, then the table fragment.
  for (const auto& run : of->table.runs()) {
    RHODOS_RETURN_IF_ERROR(disks_->Free(
        run.disk, run.first_fragment,
        static_cast<std::uint32_t>(run.contiguous_count) *
            kFragmentsPerBlock));
  }
  for (const auto& ib : of->indirect_blocks) {
    RHODOS_RETURN_IF_ERROR(
        disks_->Free(ib.disk, ib.first_fragment, kFragmentsPerBlock));
  }
  RHODOS_RETURN_IF_ERROR(disks_->Free(FileDisk(id), FileFitFragment(id), 1));

  // Purge the block cache of this file's entries.
  PurgeCache(id, 0);
  open_files_.erase(id);
  BumpVersion(id);
  return OkStatus();
}

Status FileService::Open(FileId id) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  ++of->pins;
  ++of->table.attributes().ref_count;
  return OkStatus();
}

Status FileService::Close(FileId id) {
  auto it = open_files_.find(id);
  if (it == open_files_.end()) {
    return {ErrorCode::kBadDescriptor, "close of file that is not open"};
  }
  OpenFile& of = it->second;
  if (of.pins > 0) --of.pins;
  if (of.table.attributes().ref_count > 0) --of.table.attributes().ref_count;
  // Delayed writes reach the platter at close.
  RHODOS_RETURN_IF_ERROR(Flush(id));
  if (of.pins == 0) open_files_.erase(it);
  return OkStatus();
}

// --- cache plumbing ------------------------------------------------------------

FileService::CacheEntry* FileService::CacheLookup(FileId id,
                                                  std::uint64_t block) {
  auto it = cache_.find(CacheKey{id, block});
  if (it == cache_.end()) return nullptr;
  if (it->second.lru_pos != lru_.begin()) {
    lru_.erase(it->second.lru_pos);
    lru_.push_front(it->first);
    it->second.lru_pos = lru_.begin();
  }
  return &it->second;
}

Status FileService::WritebackEntry(const CacheKey& key, CacheEntry& entry) {
  if (!entry.dirty) return OkStatus();
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(key.file));
  RHODOS_ASSIGN_OR_RETURN(BlockLocation loc,
                          of->table.Locate(key.block));
  RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(loc.disk));
  RHODOS_RETURN_IF_ERROR(server->PutBlock(loc.first_fragment,
                                          kFragmentsPerBlock,
                                          entry.buffer.span()));
  entry.dirty = false;
  return OkStatus();
}

Status FileService::EvictOne() {
  // Prefer the least-recently-used clean entry; if all are dirty, write the
  // LRU one back first.
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    auto it = cache_.find(*rit);
    if (it != cache_.end() && !it->second.dirty) {
      NoteDropped(it->second);
      lru_.erase(it->second.lru_pos);
      cache_.erase(it);
      return OkStatus();
    }
  }
  if (lru_.empty()) {
    return {ErrorCode::kInternal, "evict from empty cache"};
  }
  const CacheKey victim = lru_.back();
  auto it = cache_.find(victim);
  RHODOS_RETURN_IF_ERROR(WritebackEntry(victim, it->second));
  NoteDropped(it->second);
  lru_.erase(it->second.lru_pos);
  cache_.erase(it);
  return OkStatus();
}

Result<FileService::CacheEntry*> FileService::CacheInsert(
    FileId id, std::uint64_t block, std::span<const std::uint8_t> data,
    bool dirty) {
  if (block_pool_.capacity() == 0) {
    return static_cast<CacheEntry*>(nullptr);  // caching disabled
  }
  if (auto* existing = CacheLookup(id, block)) {
    std::memcpy(existing->buffer.data(), data.data(), kBlockSize);
    existing->dirty = existing->dirty || dirty;
    if (dirty && existing->prefetched) {
      // Overwritten before ever being read: the prefetch bought nothing.
      existing->prefetched = false;
      ++stats_.readahead_wasted;
    }
    return existing;
  }
  auto buffer = block_pool_.Acquire();
  while (!buffer.has_value()) {
    RHODOS_RETURN_IF_ERROR(EvictOne());
    buffer = block_pool_.Acquire();
  }
  std::memcpy(buffer->data(), data.data(), kBlockSize);
  const CacheKey key{id, block};
  lru_.push_front(key);
  CacheEntry entry;
  entry.buffer = std::move(*buffer);
  entry.dirty = dirty;
  entry.lru_pos = lru_.begin();
  auto [it, inserted] = cache_.emplace(key, std::move(entry));
  (void)inserted;
  return &it->second;
}

// --- read path -------------------------------------------------------------------

Status FileService::ReadBlocks(FileId id, OpenFile& of, std::uint64_t first,
                               std::uint64_t count,
                               std::span<std::uint8_t> out) {
  // Pass 1: serve cache hits and collect the physically contiguous uncached
  // spans — the per-descriptor count makes each span a single disk
  // reference (§5).
  struct UncachedSpan {
    DiskServer* server;
    FragmentIndex frag;
    std::uint64_t block;    // first logical block
    std::uint64_t blocks;   // span length
    std::size_t out_off;    // byte offset in `out`
  };
  std::vector<UncachedSpan> spans;
  std::uint64_t b = first;
  while (b < first + count) {
    std::uint8_t* dst = out.data() + (b - first) * kBlockSize;
    if (CacheEntry* hit = CacheLookup(id, b)) {
      std::memcpy(dst, hit->buffer.data(), kBlockSize);
      ++stats_.cache_hits;
      if (hit->prefetched) {
        hit->prefetched = false;
        ++stats_.readahead_hits;
      }
      ++b;
      continue;
    }
    RHODOS_ASSIGN_OR_RETURN(BlockLocation loc, of.table.Locate(b));
    std::uint64_t span_blocks = 1;
    while (span_blocks < loc.contiguous_blocks &&
           b + span_blocks < first + count &&
           cache_.find(CacheKey{id, b + span_blocks}) == cache_.end()) {
      ++span_blocks;
    }
    stats_.cache_misses += span_blocks;
    RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(loc.disk));
    spans.push_back(UncachedSpan{server, loc.first_fragment, b, span_blocks,
                                 (b - first) * kBlockSize});
    b += span_blocks;
  }
  if (spans.empty()) return OkStatus();

  // Pass 2: issue the I/O. One span keeps the classic get_block path; many
  // spans become per-disk vectored batches, and when a striped read touches
  // several disks the sub-batches overlap (lane per spindle — E10).
  if (spans.size() == 1) {
    const UncachedSpan& s = spans.front();
    RHODOS_RETURN_IF_ERROR(s.server->GetBlock(
        s.frag, static_cast<std::uint32_t>(s.blocks * kFragmentsPerBlock),
        out.subspan(s.out_off, s.blocks * kBlockSize)));
  } else {
    std::vector<std::pair<DiskServer*, std::vector<disk::ReadRun>>> per_disk;
    for (const UncachedSpan& s : spans) {
      auto it = std::find_if(
          per_disk.begin(), per_disk.end(),
          [&s](const auto& p) { return p.first == s.server; });
      if (it == per_disk.end()) {
        per_disk.emplace_back(s.server, std::vector<disk::ReadRun>{});
        it = std::prev(per_disk.end());
      }
      it->second.push_back(disk::ReadRun{
          s.frag, static_cast<std::uint32_t>(s.blocks * kFragmentsPerBlock),
          out.subspan(s.out_off, s.blocks * kBlockSize)});
    }
    if (per_disk.size() == 1) {
      RHODOS_RETURN_IF_ERROR(
          per_disk.front().first->GetBlocksVec(per_disk.front().second));
    } else {
      Status failed = OkStatus();
      sim::ParallelSection section(clock_);
      for (auto& [server, runs] : per_disk) {
        section.BeginLane();
        Status st = server->GetBlocksVec(runs);
        section.EndLane();
        if (!st.ok() && failed.ok()) failed = st;
      }
      section.Commit();
      RHODOS_RETURN_IF_ERROR(failed);
    }
  }

  // Pass 3: install everything that came off the platters into the cache.
  for (const UncachedSpan& s : spans) {
    for (std::uint64_t i = 0; i < s.blocks; ++i) {
      auto inserted = CacheInsert(
          id, s.block + i,
          {out.data() + s.out_off + i * kBlockSize, kBlockSize},
          /*dirty=*/false);
      if (!inserted.ok()) return Error{inserted.error()};
    }
  }
  return OkStatus();
}

Result<std::uint64_t> FileService::Read(FileId id, std::uint64_t offset,
                                        std::span<std::uint8_t> out) {
  obs::SpanScope span(obs::TracerOf(obs_), "file", "read");
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  ++stats_.reads;
  const std::uint64_t size = of->table.attributes().size;
  if (offset >= size) return std::uint64_t{0};
  const std::uint64_t len = std::min<std::uint64_t>(out.size(), size - offset);
  if (len == 0) return std::uint64_t{0};

  const std::uint64_t first_block = offset / kBlockSize;
  const std::uint64_t last_block = (offset + len - 1) / kBlockSize;
  const std::uint64_t block_count = last_block - first_block + 1;
  const std::uint64_t head_misalign = offset % kBlockSize;

  if (head_misalign == 0) {
    // Block-aligned: decode whole blocks straight into the caller's span —
    // no staging copy. Only a partial tail block goes through scratch.
    const std::uint64_t whole = len / kBlockSize;
    if (whole > 0) {
      RHODOS_RETURN_IF_ERROR(ReadBlocks(id, *of, first_block, whole,
                                        out.subspan(0, whole * kBlockSize)));
    }
    const std::uint64_t tail = len - whole * kBlockSize;
    if (tail > 0) {
      std::vector<std::uint8_t> scratch(kBlockSize);
      RHODOS_RETURN_IF_ERROR(
          ReadBlocks(id, *of, first_block + whole, 1, scratch));
      std::memcpy(out.data() + whole * kBlockSize, scratch.data(), tail);
    }
  } else {
    // Misaligned head: read whole blocks into scratch, copy the span out.
    std::vector<std::uint8_t> scratch(block_count * kBlockSize);
    RHODOS_RETURN_IF_ERROR(
        ReadBlocks(id, *of, first_block, block_count, scratch));
    std::memcpy(out.data(), scratch.data() + head_misalign, len);
  }

  // Sequential-pattern detector: a read that picks up exactly where the
  // previous one ended extends the streak; any seek cancels it. A long
  // enough streak arms speculative read-ahead past the just-read range.
  if (config_.readahead_blocks > 0) {
    of->sequential_streak =
        offset == of->next_expected_offset ? of->sequential_streak + 1 : 1;
    of->next_expected_offset = offset + len;
    if (of->sequential_streak >= config_.readahead_trigger) {
      // Prefetch failures must not fail the read that triggered them.
      Status ra = ReadAhead(id, *of, last_block + 1);
      (void)ra;
    }
  }

  of->table.attributes().last_read_time = clock_ ? clock_->Now() : 0;
  of->table.attributes().access_count += 1;
  of->attrs_dirty = true;
  stats_.bytes_read += len;
  return len;
}

Status FileService::ReadAhead(FileId id, OpenFile& of, std::uint64_t from) {
  if (block_pool_.capacity() == 0) return OkStatus();  // nowhere to put it
  const std::uint64_t size_blocks =
      (of.table.attributes().size + kBlockSize - 1) / kBlockSize;
  const std::uint64_t mapped = std::min(of.table.BlockCount(), size_blocks);
  std::uint64_t limit = std::min<std::uint64_t>(
      mapped, from + config_.readahead_blocks);
  // Skip blocks the cache already holds; stop at the first gap's run.
  std::uint64_t b = from;
  while (b < limit && cache_.find(CacheKey{id, b}) != cache_.end()) ++b;
  if (b >= limit) return OkStatus();
  RHODOS_ASSIGN_OR_RETURN(BlockLocation loc, of.table.Locate(b));
  RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(loc.disk));
  std::uint64_t n = 1;
  auto extendable = [&] {
    return n < loc.contiguous_blocks &&
           cache_.find(CacheKey{id, b + n}) == cache_.end();
  };
  while (b + n < limit && extendable()) ++n;
  // Track-align the prefetch end: if the run keeps going, sweep to the end
  // of the track the last fragment lands on, so the whole prefetch is one
  // head pass with no partial-track residue.
  const std::uint32_t fpt = server->config().geometry.fragments_per_track;
  while (b + n < mapped && extendable() &&
         (loc.first_fragment + n * kFragmentsPerBlock) % fpt != 0) {
    ++n;
  }
  std::vector<std::uint8_t> scratch(n * kBlockSize);
  RHODOS_RETURN_IF_ERROR(server->GetBlock(
      loc.first_fragment, static_cast<std::uint32_t>(n * kFragmentsPerBlock),
      scratch));
  for (std::uint64_t i = 0; i < n; ++i) {
    RHODOS_ASSIGN_OR_RETURN(
        CacheEntry * entry,
        CacheInsert(id, b + i, {scratch.data() + i * kBlockSize, kBlockSize},
                    /*dirty=*/false));
    if (entry != nullptr) entry->prefetched = true;
  }
  stats_.readahead_issued += n;
  return OkStatus();
}

// --- write path --------------------------------------------------------------------

Status FileService::Grow(FileId id, OpenFile& of, std::uint64_t blocks) {
  const std::uint64_t first_new_block = of.table.BlockCount();
  std::uint64_t remaining = blocks;
  while (remaining > 0) {
    auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, config_.extent_blocks));

    // First preference: extend the last extent in place, which keeps the
    // file contiguous and the WAL commit path applicable.
    if (config_.extend_in_place && of.table.RunCount() > 0) {
      const BlockDescriptor& last = of.table.runs().back();
      const FragmentIndex next =
          last.first_fragment +
          static_cast<FragmentIndex>(last.contiguous_count) *
              kFragmentsPerBlock;
      auto server = disks_->Get(last.disk);
      if (server.ok() &&
          (*server)
              ->AllocateSpecific(next, chunk * kFragmentsPerBlock)
              .ok()) {
        RHODOS_RETURN_IF_ERROR(of.table.AppendRun(last.disk, next, chunk));
        remaining -= chunk;
        continue;
      }
    }

    // Fresh extent, placed by the registry's policy; avoid the disk the
    // previous extent landed on so extents interleave across spindles.
    const DiskId last_disk = of.table.RunCount() > 0
                                 ? of.table.runs().back().disk
                                 : DiskId{~std::uint32_t{0}};
    Result<disk::DiskRegistry::Placement> placement{
        Error{ErrorCode::kNoSpace, ""}};
    while (true) {
      placement = disks_->AllocateAvoiding(chunk * kFragmentsPerBlock,
                                           last_disk);
      if (placement.ok() || chunk == 1) break;
      chunk /= 2;  // fall back to smaller extents as the disks fill up
    }
    if (!placement.ok()) {
      return {ErrorCode::kNoSpace, "disks full while growing file"};
    }
    RHODOS_RETURN_IF_ERROR(
        of.table.AppendRun(placement->disk, placement->first, chunk));
    remaining -= chunk;
  }
  of.table_dirty = true;
  // Extents may reuse freed fragments whose platters still hold old data;
  // a flat file must read back zeros in never-written regions. Zero-fill
  // the new blocks through the cache (dirty, so the zeros reach the disk
  // at the next writeback) — or directly when caching is off.
  const std::vector<std::uint8_t> zeros(kBlockSize, 0);
  for (std::uint64_t b = first_new_block; b < first_new_block + blocks;
       ++b) {
    RHODOS_ASSIGN_OR_RETURN(CacheEntry * entry,
                            CacheInsert(id, b, zeros, /*dirty=*/true));
    if (entry == nullptr) {
      RHODOS_ASSIGN_OR_RETURN(BlockLocation loc, of.table.Locate(b));
      RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(loc.disk));
      RHODOS_RETURN_IF_ERROR(
          server->PutBlock(loc.first_fragment, kFragmentsPerBlock, zeros));
    }
  }
  return OkStatus();
}

Result<std::uint64_t> FileService::Write(FileId id, std::uint64_t offset,
                                         std::span<const std::uint8_t> in) {
  obs::SpanScope span(obs::TracerOf(obs_), "file", "write");
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  if (of->table.attributes().immutable()) {
    return Error{ErrorCode::kPermissionDenied, "write to immutable snapshot"};
  }
  ++stats_.writes;
  const std::uint64_t len = in.size();
  if (len == 0) return std::uint64_t{0};

  // Extend the mapping as needed.
  const std::uint64_t needed_blocks =
      (offset + len + kBlockSize - 1) / kBlockSize;
  if (needed_blocks > of->table.BlockCount()) {
    RHODOS_RETURN_IF_ERROR(
        Grow(id, *of, needed_blocks - of->table.BlockCount()));
  }

  // Copy-on-write: any block about to be overwritten must be exclusively
  // ours BEFORE it can be dirtied — snapshots sharing it keep the old copy.
  RHODOS_RETURN_IF_ERROR(EnsureExclusive(
      id, *of, offset / kBlockSize,
      (offset + len - 1) / kBlockSize - offset / kBlockSize + 1));

  const WritePolicy policy = PolicyFor(*of);
  // Assemble every block first (whole aligned blocks write straight from
  // the caller's span; partial blocks stage through a read-modify-write
  // buffer), then push the write-through set to the disks as per-disk
  // vectored batches so a striped write fans out across spindles.
  struct PendingPut {
    DiskServer* server;
    FragmentIndex frag;
    std::span<const std::uint8_t> data;
  };
  std::vector<PendingPut> puts;
  std::deque<std::vector<std::uint8_t>> staged;  // keeps RMW buffers alive
  std::uint64_t written = 0;
  while (written < len) {
    const std::uint64_t pos = offset + written;
    const std::uint64_t block = pos / kBlockSize;
    const std::uint64_t in_block = pos % kBlockSize;
    const std::uint64_t n =
        std::min<std::uint64_t>(len - written, kBlockSize - in_block);

    const bool whole_block = in_block == 0 && n == kBlockSize;
    const bool beyond_old_data =
        block * kBlockSize >= of->table.attributes().size;
    std::span<const std::uint8_t> data;
    if (whole_block) {
      data = in.subspan(written, kBlockSize);
    } else {
      staged.emplace_back(kBlockSize);
      std::vector<std::uint8_t>& full = staged.back();
      if (!beyond_old_data) {
        // Partial overwrite of existing data: read-modify-write.
        RHODOS_RETURN_IF_ERROR(ReadBlocks(id, *of, block, 1, full));
      }
      std::memcpy(full.data() + in_block, in.data() + written, n);
      data = full;
    }

    RHODOS_ASSIGN_OR_RETURN(CacheEntry * entry,
                            CacheInsert(id, block, data, /*dirty=*/true));
    if (policy == WritePolicy::kWriteThrough || entry == nullptr) {
      // Write through (or cache disabled): queue for the disk service.
      RHODOS_ASSIGN_OR_RETURN(BlockLocation loc, of->table.Locate(block));
      RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(loc.disk));
      puts.push_back(PendingPut{server, loc.first_fragment, data});
      if (entry != nullptr) entry->dirty = false;
    }
    written += n;
  }

  if (puts.size() == 1) {
    RHODOS_RETURN_IF_ERROR(puts.front().server->PutBlock(
        puts.front().frag, kFragmentsPerBlock, puts.front().data));
  } else if (!puts.empty()) {
    std::vector<std::pair<DiskServer*, std::vector<disk::WriteRun>>> per_disk;
    for (const PendingPut& p : puts) {
      auto it = std::find_if(
          per_disk.begin(), per_disk.end(),
          [&p](const auto& d) { return d.first == p.server; });
      if (it == per_disk.end()) {
        per_disk.emplace_back(p.server, std::vector<disk::WriteRun>{});
        it = std::prev(per_disk.end());
      }
      it->second.push_back(disk::WriteRun{p.frag, kFragmentsPerBlock, p.data});
    }
    if (per_disk.size() == 1) {
      RHODOS_RETURN_IF_ERROR(
          per_disk.front().first->PutBlocksVec(per_disk.front().second));
    } else {
      Status failed = OkStatus();
      sim::ParallelSection section(clock_);
      for (auto& [server, runs] : per_disk) {
        section.BeginLane();
        Status st = server->PutBlocksVec(runs);
        section.EndLane();
        if (!st.ok() && failed.ok()) failed = st;
      }
      section.Commit();
      RHODOS_RETURN_IF_ERROR(failed);
    }
  }

  auto& attrs = of->table.attributes();
  attrs.access_count += 1;
  of->attrs_dirty = true;
  if (offset + len > attrs.size) {
    attrs.size = offset + len;
    of->table_dirty = true;
  }
  stats_.bytes_written += len;
  BumpVersion(id);
  if (of->table_dirty && policy == WritePolicy::kWriteThrough) {
    RHODOS_RETURN_IF_ERROR(StoreTable(id, *of));
  }
  return len;
}

Status FileService::Resize(FileId id, std::uint64_t size) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  if (of->table.attributes().immutable()) {
    return {ErrorCode::kPermissionDenied, "resize of immutable snapshot"};
  }
  const std::uint64_t old_size = of->table.attributes().size;
  const std::uint64_t new_blocks = (size + kBlockSize - 1) / kBlockSize;
  if (new_blocks > of->table.BlockCount()) {
    RHODOS_RETURN_IF_ERROR(Grow(id, *of, new_blocks - of->table.BlockCount()));
  } else if (new_blocks < of->table.BlockCount()) {
    // Shared runs beyond the cut: truncation, decrements, and frees must be
    // one journaled all-or-nothing unit (a crash after freeing but before
    // the table persisted would leave the table claiming freed blocks).
    bool shared_cut = false;
    std::uint64_t seen = 0;
    for (const auto& run : of->table.runs()) {
      if (seen + run.contiguous_count > new_blocks && run.shared()) {
        shared_cut = true;
      }
      seen += run.contiguous_count;
    }
    if (shared_cut) {
      RHODOS_RETURN_IF_ERROR(snap_journal_.Ensure());
      SnapOp op;
      op.kind = SnapOpKind::kRelease;
      op.file = id;
      op.truncate = true;
      op.first_block = new_blocks;
      // Probe the cut without mutating, to record the releases.
      FileIndexTable probe = of->table;
      for (const auto& run : probe.TruncateBlocks(new_blocks)) {
        BuildRelease(run, op);
      }
      RHODOS_ASSIGN_OR_RETURN(const std::uint64_t seq,
                              snap_journal_.LogOp(op));
      RHODOS_RETURN_IF_ERROR(ApplySnapOp(op));
      RHODOS_RETURN_IF_ERROR(snap_journal_.LogDone(seq));
      ++stats_.shared_releases;
      RHODOS_ASSIGN_OR_RETURN(of, LoadTable(id));  // apply may invalidate
    } else {
      for (const auto& run : of->table.TruncateBlocks(new_blocks)) {
        RHODOS_RETURN_IF_ERROR(disks_->Free(
            run.disk, run.first_fragment,
            static_cast<std::uint32_t>(run.contiguous_count) *
                kFragmentsPerBlock));
      }
    }
    // Drop now-stale cache entries beyond the cut.
    PurgeCache(id, new_blocks);
  }
  // A kept tail block about to be partially zeroed must be exclusive: the
  // snapshot sharing it keeps the full-length bytes.
  if (size < old_size && size % kBlockSize != 0 && new_blocks > 0) {
    RHODOS_RETURN_IF_ERROR(EnsureExclusive(id, *of, size / kBlockSize, 1));
  }
  // Shrinking to a mid-block size leaves old bytes in the kept block's
  // tail; zero them now so a later grow re-exposes zeros, not stale data.
  if (size < old_size && size % kBlockSize != 0 && new_blocks > 0) {
    const std::uint64_t last = size / kBlockSize;
    std::vector<std::uint8_t> block(kBlockSize);
    RHODOS_RETURN_IF_ERROR(ReadBlocks(id, *of, last, 1, block));
    std::memset(block.data() + size % kBlockSize, 0,
                kBlockSize - size % kBlockSize);
    RHODOS_ASSIGN_OR_RETURN(CacheEntry * entry,
                            CacheInsert(id, last, block, /*dirty=*/true));
    if (entry == nullptr) {
      RHODOS_ASSIGN_OR_RETURN(BlockLocation loc, of->table.Locate(last));
      RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(loc.disk));
      RHODOS_RETURN_IF_ERROR(
          server->PutBlock(loc.first_fragment, kFragmentsPerBlock, block));
    }
  }
  of->table.attributes().size = size;
  of->table_dirty = true;
  BumpVersion(id);
  return StoreTable(id, *of);
}

Result<FileAttributes> FileService::GetAttributes(FileId id) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  return of->table.attributes();
}

Status FileService::SetServiceType(FileId id, ServiceType type) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  of->table.attributes().service_type = type;
  return StoreTable(id, *of);
}

Status FileService::SetLockLevel(FileId id, LockLevel level) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  of->table.attributes().locking_level = level;
  return StoreTable(id, *of);
}

Status FileService::WritebackDirty(const FileId* only) {
  std::vector<CacheKey> keys;
  for (const auto& [key, entry] : cache_) {
    if (entry.dirty && (only == nullptr || key.file == *only)) {
      keys.push_back(key);
    }
  }
  if (keys.empty()) return OkStatus();
  if (keys.size() == 1) {
    auto it = cache_.find(keys.front());
    return WritebackEntry(keys.front(), it->second);
  }

  // Locate every dirty block, group the writebacks per disk, and let each
  // disk's elevator sweep them in one vectored request; independent disks
  // overlap. This is what turns N delayed-write completions into a handful
  // of disk references instead of N.
  std::vector<std::pair<DiskServer*, std::vector<disk::WriteRun>>> per_disk;
  std::vector<CacheEntry*> flushed;
  flushed.reserve(keys.size());
  for (const CacheKey& key : keys) {
    auto it = cache_.find(key);
    RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(key.file));
    RHODOS_ASSIGN_OR_RETURN(BlockLocation loc, of->table.Locate(key.block));
    RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(loc.disk));
    auto slot = std::find_if(
        per_disk.begin(), per_disk.end(),
        [server](const auto& d) { return d.first == server; });
    if (slot == per_disk.end()) {
      per_disk.emplace_back(server, std::vector<disk::WriteRun>{});
      slot = std::prev(per_disk.end());
    }
    slot->second.push_back(disk::WriteRun{loc.first_fragment,
                                          kFragmentsPerBlock,
                                          it->second.buffer.span()});
    flushed.push_back(&it->second);
  }
  if (per_disk.size() == 1) {
    RHODOS_RETURN_IF_ERROR(
        per_disk.front().first->PutBlocksVec(per_disk.front().second));
  } else {
    Status failed = OkStatus();
    sim::ParallelSection section(clock_);
    for (auto& [server, runs] : per_disk) {
      section.BeginLane();
      Status st = server->PutBlocksVec(runs);
      section.EndLane();
      if (!st.ok() && failed.ok()) failed = st;
    }
    section.Commit();
    RHODOS_RETURN_IF_ERROR(failed);
  }
  for (CacheEntry* entry : flushed) entry->dirty = false;
  return OkStatus();
}

Status FileService::Flush(FileId id) {
  // Write back this file's dirty blocks (delayed-write completion), then
  // its table if it changed.
  RHODOS_RETURN_IF_ERROR(WritebackDirty(&id));
  auto it = open_files_.find(id);
  if (it != open_files_.end() &&
      (it->second.table_dirty || it->second.attrs_dirty)) {
    RHODOS_RETURN_IF_ERROR(StoreTable(id, it->second));
  }
  return OkStatus();
}

Status FileService::FlushAll() {
  RHODOS_RETURN_IF_ERROR(WritebackDirty(nullptr));
  for (auto& [id, of] : open_files_) {
    if (of.table_dirty || of.attrs_dirty) {
      RHODOS_RETURN_IF_ERROR(StoreTable(id, of));
    }
  }
  for (const auto& d : disks_->disks()) {
    RHODOS_RETURN_IF_ERROR(d->FlushAll());
    RHODOS_RETURN_IF_ERROR(d->PersistMetadata());
  }
  return OkStatus();
}

// --- block-level interface ----------------------------------------------------

Result<std::uint64_t> FileService::BlockCount(FileId id) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  return of->table.BlockCount();
}

Status FileService::ReadBlock(FileId id, std::uint64_t block_index,
                              std::span<std::uint8_t> out) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  return ReadBlocks(id, *of, block_index, 1, out);
}

Status FileService::WriteBlock(FileId id, std::uint64_t block_index,
                               std::span<const std::uint8_t> in,
                               bool force_write_through) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  if (of->table.attributes().immutable()) {
    return {ErrorCode::kPermissionDenied, "write to immutable snapshot"};
  }
  if (block_index >= of->table.BlockCount()) {
    return {ErrorCode::kBadAddress, "write beyond mapped blocks"};
  }
  RHODOS_RETURN_IF_ERROR(EnsureExclusive(id, *of, block_index, 1));
  RHODOS_ASSIGN_OR_RETURN(CacheEntry * entry,
                          CacheInsert(id, block_index, in, /*dirty=*/true));
  if (force_write_through || PolicyFor(*of) == WritePolicy::kWriteThrough ||
      entry == nullptr) {
    RHODOS_ASSIGN_OR_RETURN(BlockLocation loc,
                            of->table.Locate(block_index));
    RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(loc.disk));
    RHODOS_RETURN_IF_ERROR(
        server->PutBlock(loc.first_fragment, kFragmentsPerBlock, in));
    if (entry != nullptr) entry->dirty = false;
  }
  BumpVersion(id);
  return OkStatus();
}

Result<BlockLocation> FileService::LocateBlock(FileId id,
                                               std::uint64_t block_index) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  return of->table.Locate(block_index);
}

Result<bool> FileService::IsContiguous(FileId id) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  return of->table.FullyContiguous();
}

Result<double> FileService::ContiguityIndex(FileId id) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  return of->table.ContiguityIndex();
}

Result<std::vector<BlockDescriptor>> FileService::FileRuns(FileId id) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  return of->table.runs();
}

Result<std::vector<BlockDescriptor>> FileService::IndirectBlockLocations(
    FileId id) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  return of->indirect_blocks;
}

Status FileService::ReplaceBlock(FileId id, std::uint64_t block_index,
                                 DiskId disk, FragmentIndex fragment) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  if (of->table.attributes().immutable()) {
    return {ErrorCode::kPermissionDenied, "rebind in immutable snapshot"};
  }
  RHODOS_ASSIGN_OR_RETURN(BlockLocation old, of->table.Locate(block_index));
  if ((old.flags & kRunShared) != 0) {
    RHODOS_RETURN_IF_ERROR(snap_journal_.Ensure());
    const std::uint32_t share =
        snap_journal_.map().CountOf(old.disk, old.first_fragment);
    if (share >= 2) {
      // The donor block also belongs to a snapshot/clone: rebinding must
      // decrement, not free, and the decrement + rebind must be one
      // journaled unit so a crash never half-applies the shadow commit.
      SnapOp op;
      op.kind = SnapOpKind::kRelease;
      op.file = id;
      op.rebind = true;
      op.first_block = block_index;
      op.block_count = 1;
      op.new_disk = disk;
      op.new_fragment = fragment;
      op.ref_edits.push_back(
          SnapRefEdit{old.disk, old.first_fragment, 1, share - 1});
      RHODOS_ASSIGN_OR_RETURN(const std::uint64_t seq,
                              snap_journal_.LogOp(op));
      RHODOS_RETURN_IF_ERROR(ApplySnapOp(op));
      RHODOS_RETURN_IF_ERROR(snap_journal_.LogDone(seq));
      ++stats_.shared_releases;
      return OkStatus();
    }
    // Stale flag (last owner): clear it lazily and free as usual.
    RHODOS_RETURN_IF_ERROR(of->table.ClearSharedInRange(block_index, 1));
  }
  RHODOS_RETURN_IF_ERROR(of->table.ReplaceBlock(block_index, disk, fragment));
  RHODOS_RETURN_IF_ERROR(
      disks_->Free(old.disk, old.first_fragment, kFragmentsPerBlock));
  // The logical block now lives elsewhere; the cached copy is stale.
  if (auto it = cache_.find(CacheKey{id, block_index}); it != cache_.end()) {
    NoteDropped(it->second);
    lru_.erase(it->second.lru_pos);
    cache_.erase(it);
  }
  BumpVersion(id);
  return StoreTable(id, *of);
}

Result<disk::DiskRegistry::Placement> FileService::AllocateShadowBlock(
    FileId id) {
  // Prefer the file's home disk so the shadow write stays on one spindle.
  auto server = disks_->Get(FileDisk(id));
  if (server.ok()) {
    if (auto frag = (*server)->AllocateBlocks(1); frag.ok()) {
      return disk::DiskRegistry::Placement{(*server)->id(), *frag};
    }
  }
  return disks_->Allocate(kFragmentsPerBlock);
}

// --- snapshots and clones (E23) -----------------------------------------------

void FileService::PurgeCache(FileId id, std::uint64_t from) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first.file == id && it->first.block >= from) {
      NoteDropped(it->second);
      lru_.erase(it->second.lru_pos);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void FileService::BuildRelease(const BlockDescriptor& run, SnapOp& op) {
  if (!run.shared()) {
    op.frees.push_back(SnapFree{
        run.disk, run.first_fragment,
        static_cast<std::uint32_t>(run.contiguous_count) *
            kFragmentsPerBlock});
    return;
  }
  for (const SharePiece& piece : snap_journal_.map().Pieces(
           run.disk, run.first_fragment, run.contiguous_count)) {
    if (piece.count <= 1) {
      op.frees.push_back(SnapFree{piece.disk, piece.first_fragment,
                                  piece.block_count * kFragmentsPerBlock});
    } else {
      op.ref_edits.push_back(SnapRefEdit{piece.disk, piece.first_fragment,
                                         piece.block_count, piece.count - 1});
    }
  }
}

Result<FileId> FileService::Snapshot(FileId id) {
  RHODOS_ASSIGN_OR_RETURN(const FileId image,
                          CaptureImage(id, kImageSnapshot));
  ++stats_.snapshots;
  return image;
}

Result<FileId> FileService::Clone(FileId id) {
  RHODOS_ASSIGN_OR_RETURN(const FileId image, CaptureImage(id, kImageClone));
  ++stats_.clones;
  return image;
}

Result<FileId> FileService::CaptureImage(FileId id,
                                         std::uint8_t image_flags) {
  obs::SpanScope span(obs::TracerOf(obs_), "file",
                      (image_flags & kImageSnapshot) != 0 ? "snapshot"
                                                          : "clone");
  RHODOS_RETURN_IF_ERROR(snap_journal_.Ensure());
  // The capture point is the file AS DURABLE NOW: dirty delayed-write
  // blocks and the table reach the platter first, so the image never
  // references data that only ever lived in the cache.
  RHODOS_RETURN_IF_ERROR(Flush(id));
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));

  // The image's index-table fragment, preferably on the source's home disk
  // (the image is pinned to the source's shard either way).
  DiskId img_disk = FileDisk(id);
  FragmentIndex img_frag = 0;
  bool placed = false;
  if (auto server = disks_->Get(img_disk); server.ok()) {
    if (auto frag = (*server)->AllocateFragments(1); frag.ok()) {
      img_frag = *frag;
      placed = true;
    }
  }
  if (!placed) {
    RHODOS_ASSIGN_OR_RETURN(auto placement, disks_->Allocate(1));
    img_disk = placement.disk;
    img_frag = placement.first;
  }
  const FileId image_id = MakeFileId(img_disk, img_frag);

  // One journaled op captures the whole image: every piece of every source
  // run gains one holder (absolute counts — idempotent to replay). A
  // contiguous never-shared file costs exactly one ref edit, which is what
  // keeps snapshot cost independent of file size.
  SnapOp op;
  op.kind = SnapOpKind::kImage;
  op.file = image_id;
  op.source = id;
  op.image_flags = image_flags;
  for (const auto& run : of->table.runs()) {
    for (const SharePiece& piece : snap_journal_.map().Pieces(
             run.disk, run.first_fragment, run.contiguous_count)) {
      op.ref_edits.push_back(SnapRefEdit{piece.disk, piece.first_fragment,
                                         piece.block_count,
                                         piece.count + 1});
    }
  }
  RHODOS_ASSIGN_OR_RETURN(const std::uint64_t seq, snap_journal_.LogOp(op));
  RHODOS_RETURN_IF_ERROR(ApplySnapOp(op));
  RHODOS_RETURN_IF_ERROR(snap_journal_.LogDone(seq));
  return image_id;
}

Status FileService::EnsureExclusive(FileId id, OpenFile& of,
                                    std::uint64_t first_block,
                                    std::uint64_t count) {
  if (count == 0 || of.table.BlockCount() == 0) return OkStatus();
  const std::uint64_t end =
      std::min(first_block + count, of.table.BlockCount());
  // Cheap pre-scan: files that never snapshotted carry no shared runs and
  // pay only this walk of the in-memory table.
  bool any_shared = false;
  for (std::uint64_t b = first_block; b < end;) {
    RHODOS_ASSIGN_OR_RETURN(BlockLocation loc, of.table.Locate(b));
    if ((loc.flags & kRunShared) != 0) {
      any_shared = true;
      break;
    }
    b += std::min<std::uint64_t>(loc.contiguous_blocks, end - b);
  }
  if (!any_shared) return OkStatus();

  RHODOS_RETURN_IF_ERROR(snap_journal_.Ensure());
  for (std::uint64_t b = first_block; b < end;) {
    RHODOS_ASSIGN_OR_RETURN(BlockLocation loc, of.table.Locate(b));
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(loc.contiguous_blocks, end - b));
    if ((loc.flags & kRunShared) == 0) {
      b += n;
      continue;
    }
    // Handle the first uniformly-counted piece, then re-Locate: both the
    // lazy flag clear and the split mutate the run list under us.
    const SharePiece piece =
        snap_journal_.map().Pieces(loc.disk, loc.first_fragment, n).front();
    if (piece.count <= 1) {
      // The other holders are gone; the flag is stale. Clear it lazily —
      // no journal entry needed, the share map already says "exclusive".
      RHODOS_RETURN_IF_ERROR(
          of.table.ClearSharedInRange(b, piece.block_count));
      of.table_dirty = true;
      b += piece.block_count;
    } else {
      RHODOS_ASSIGN_OR_RETURN(
          const std::uint32_t split,
          CowSplit(id, of, b, piece.block_count, piece.count));
      b += split;
    }
  }
  return OkStatus();
}

Result<std::uint32_t> FileService::CowSplit(FileId id, OpenFile& of,
                                            std::uint64_t first_block,
                                            std::uint32_t count,
                                            std::uint32_t share) {
  obs::SpanScope span(obs::TracerOf(obs_), "file", "cow_split");
  RHODOS_ASSIGN_OR_RETURN(BlockLocation donor, of.table.Locate(first_block));

  // Allocate the private copy, preferring the donor's spindle, halving the
  // chunk as the disks fill (smaller splits, never failure-by-fragmentation).
  std::uint32_t chunk = count;
  DiskId tgt_disk{};
  FragmentIndex tgt_frag = 0;
  while (true) {
    bool placed = false;
    if (auto server = disks_->Get(donor.disk); server.ok()) {
      if (auto frag = (*server)->AllocateBlocks(chunk); frag.ok()) {
        tgt_disk = donor.disk;
        tgt_frag = *frag;
        placed = true;
      }
    }
    if (!placed) {
      if (auto placement = disks_->Allocate(chunk * kFragmentsPerBlock);
          placement.ok()) {
        tgt_disk = placement->disk;
        tgt_frag = placement->first;
        placed = true;
      }
    }
    if (placed) break;
    if (chunk == 1) {
      return Error{ErrorCode::kNoSpace, "no space for copy-on-write split"};
    }
    chunk /= 2;
  }

  // Copy the shared bytes to the private location BEFORE the commit point:
  // if we crash here the allocation was volatile and nothing changed; after
  // the force, redo finds the data already in place.
  std::vector<std::uint8_t> data(
      static_cast<std::size_t>(chunk) * kBlockSize);
  RHODOS_RETURN_IF_ERROR(ReadBlocks(id, of, first_block, chunk, data));
  RHODOS_ASSIGN_OR_RETURN(DiskServer * tgt_server, disks_->Get(tgt_disk));
  RHODOS_RETURN_IF_ERROR(
      tgt_server->PutBlock(tgt_frag, chunk * kFragmentsPerBlock, data));

  SnapOp op;
  op.kind = SnapOpKind::kCowSplit;
  op.file = id;
  op.first_block = first_block;
  op.block_count = chunk;
  op.new_disk = tgt_disk;
  op.new_fragment = tgt_frag;
  op.ref_edits.push_back(
      SnapRefEdit{donor.disk, donor.first_fragment, chunk, share - 1});
  RHODOS_ASSIGN_OR_RETURN(const std::uint64_t seq, snap_journal_.LogOp(op));
  RHODOS_RETURN_IF_ERROR(ApplySnapOp(op));
  RHODOS_RETURN_IF_ERROR(snap_journal_.LogDone(seq));
  ++stats_.cow_splits;
  stats_.cow_blocks_copied += chunk;
  return chunk;
}

Status FileService::ApplySnapOp(const SnapOp& op) {
  // Re-install the absolute counts first: inline they are already in the
  // map (LogOp applied them), at recovery this is the redo.
  for (const SnapRefEdit& e : op.ref_edits) {
    snap_journal_.map().SetCount(e.disk, e.first_fragment, e.block_count,
                                 e.count);
  }
  std::vector<DiskServer*> touched;
  auto touch = [&touched](DiskServer* s) {
    if (std::find(touched.begin(), touched.end(), s) == touched.end()) {
      touched.push_back(s);
    }
  };

  switch (op.kind) {
    case SnapOpKind::kImage: {
      // The source's runs all become shared; persist so the COW trigger
      // survives restarts even before the next ordinary table store.
      RHODOS_ASSIGN_OR_RETURN(OpenFile * src, LoadTable(op.source));
      src->table.SetAllRunsShared();
      src->table_dirty = true;
      RHODOS_RETURN_IF_ERROR(StoreTable(op.source, *src));

      // Claim the image's table fragment (volatile allocation at first
      // apply; re-claim at redo if the bitmap persisted without it).
      RHODOS_ASSIGN_OR_RETURN(DiskServer * server,
                              disks_->Get(FileDisk(op.file)));
      if (!server->IsFragmentAllocated(FileFitFragment(op.file))) {
        RHODOS_RETURN_IF_ERROR(
            server->AllocateSpecific(FileFitFragment(op.file), 1));
      }
      touch(server);

      // Materialize the image deterministically from the source: same runs,
      // all shared. A redo that finds a half-stored image from the crashed
      // first attempt adopts its indirect blocks instead of leaking them.
      open_files_.erase(op.file);
      OpenFile image;
      image.table.attributes() = src->table.attributes();
      FileAttributes& attrs = image.table.attributes();
      attrs.ref_count = 0;
      attrs.created_time = clock_ ? clock_->Now() : 0;
      attrs.image_flags = op.image_flags;
      attrs.origin = op.source.value;
      for (const auto& run : src->table.runs()) {
        RHODOS_RETURN_IF_ERROR(image.table.AppendDescriptor(run));
      }
      {
        std::vector<std::uint8_t> fragment(kFragmentSize);
        if (server->GetBlock(FileFitFragment(op.file), 1, fragment).ok()) {
          auto parsed = ParseFitFragment(fragment);
          if (parsed.ok() &&
              parsed->table.attributes().origin == op.source.value &&
              parsed->table.attributes().image_flags == op.image_flags) {
            image.indirect_blocks = std::move(parsed->indirect_blocks);
            for (const auto& ib : image.indirect_blocks) {
              RHODOS_ASSIGN_OR_RETURN(DiskServer * ib_server,
                                      disks_->Get(ib.disk));
              if (!ib_server->IsFragmentAllocated(ib.first_fragment)) {
                RHODOS_RETURN_IF_ERROR(ib_server->AllocateSpecific(
                    ib.first_fragment, kFragmentsPerBlock));
              }
              touch(ib_server);
            }
          }
        }
      }
      RHODOS_RETURN_IF_ERROR(StoreTable(op.file, image));
      for (const auto& ib : image.indirect_blocks) {
        RHODOS_ASSIGN_OR_RETURN(DiskServer * ib_server, disks_->Get(ib.disk));
        touch(ib_server);
      }
      break;
    }

    case SnapOpKind::kCowSplit: {
      RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(op.new_disk));
      if (!server->IsFragmentAllocated(op.new_fragment)) {
        RHODOS_RETURN_IF_ERROR(server->AllocateSpecific(
            op.new_fragment, op.block_count * kFragmentsPerBlock));
      }
      touch(server);
      RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(op.file));
      RHODOS_ASSIGN_OR_RETURN(BlockLocation cur,
                              of->table.Locate(op.first_block));
      if (cur.disk != op.new_disk || cur.first_fragment != op.new_fragment) {
        RHODOS_RETURN_IF_ERROR(of->table.ReplaceRange(
            op.first_block, op.block_count, op.new_disk, op.new_fragment,
            /*flags=*/0));
      }
      of->table_dirty = true;
      RHODOS_RETURN_IF_ERROR(StoreTable(op.file, *of));
      RHODOS_ASSIGN_OR_RETURN(DiskServer * home,
                              disks_->Get(FileDisk(op.file)));
      touch(home);
      break;
    }

    case SnapOpKind::kRelease: {
      if (op.scrub_fit) {
        // Delete: scrub the table (both copies) before the frees, exactly
        // like the unshared delete path.
        RHODOS_ASSIGN_OR_RETURN(DiskServer * server,
                                disks_->Get(FileDisk(op.file)));
        const std::vector<std::uint8_t> zeros(kFragmentSize, 0);
        RHODOS_RETURN_IF_ERROR(server->PutBlock(
            FileFitFragment(op.file), 1, zeros,
            StableMode::kOriginalAndStable, WriteSync::kSynchronous));
        touch(server);
        PurgeCache(op.file, 0);
        open_files_.erase(op.file);
      }
      if (op.truncate) {
        RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(op.file));
        // The freed runs were computed at LogOp time and ride in op.frees /
        // op.ref_edits; the cut itself is redone here. The size attribute
        // is clamped in the SAME stable write: a crash between this commit
        // and the resize's final StoreTable must never leave the table
        // claiming a size beyond its mapped blocks.
        (void)of->table.TruncateBlocks(op.first_block);
        auto& attrs = of->table.attributes();
        if (attrs.size > op.first_block * kBlockSize) {
          attrs.size = op.first_block * kBlockSize;
        }
        of->table_dirty = true;
        RHODOS_RETURN_IF_ERROR(StoreTable(op.file, *of));
        RHODOS_ASSIGN_OR_RETURN(DiskServer * home,
                                disks_->Get(FileDisk(op.file)));
        touch(home);
      }
      if (op.rebind) {
        RHODOS_ASSIGN_OR_RETURN(DiskServer * server,
                                disks_->Get(op.new_disk));
        if (!server->IsFragmentAllocated(op.new_fragment)) {
          RHODOS_RETURN_IF_ERROR(server->AllocateSpecific(
              op.new_fragment, op.block_count * kFragmentsPerBlock));
        }
        touch(server);
        RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(op.file));
        RHODOS_ASSIGN_OR_RETURN(BlockLocation cur,
                                of->table.Locate(op.first_block));
        if (cur.disk != op.new_disk ||
            cur.first_fragment != op.new_fragment) {
          RHODOS_RETURN_IF_ERROR(of->table.ReplaceRange(
              op.first_block, op.block_count, op.new_disk, op.new_fragment,
              /*flags=*/0));
        }
        of->table_dirty = true;
        RHODOS_RETURN_IF_ERROR(StoreTable(op.file, *of));
        // The logical blocks now hold the shadow data: cached copies of the
        // pre-commit content are stale.
        PurgeCache(op.file, op.first_block);
        RHODOS_ASSIGN_OR_RETURN(DiskServer * home,
                                disks_->Get(FileDisk(op.file)));
        touch(home);
      }
      // Frees last, tolerant of redo (a fragment already freed — or already
      // reused after Done — is left alone; the allocation check makes the
      // free idempotent for the crash-redo window before Done).
      for (const SnapFree& f : op.frees) {
        RHODOS_ASSIGN_OR_RETURN(DiskServer * server, disks_->Get(f.disk));
        if (server->IsFragmentAllocated(f.first_fragment)) {
          RHODOS_RETURN_IF_ERROR(
              server->FreeFragments(f.first_fragment, f.fragment_count));
        }
        touch(server);
      }
      BumpVersion(op.file);
      break;
    }
  }

  // Allocation-visible commit point: the bitmaps of every touched disk.
  for (DiskServer* server : touched) {
    RHODOS_RETURN_IF_ERROR(server->PersistMetadata());
  }
  return OkStatus();
}

Status FileService::RecoverSnapshots() {
  RHODOS_ASSIGN_OR_RETURN(const bool present, snap_journal_.Probe());
  if (!present) return OkStatus();
  RHODOS_RETURN_IF_ERROR(snap_journal_.Ensure());
  for (const SnapOp& op : snap_journal_.TakePending()) {
    RHODOS_RETURN_IF_ERROR(ApplySnapOp(op));
    RHODOS_RETURN_IF_ERROR(snap_journal_.LogDone(op.seq));
  }
  return OkStatus();
}

Result<std::uint32_t> FileService::ShareCountOf(FileId id,
                                                std::uint64_t block_index) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  RHODOS_ASSIGN_OR_RETURN(BlockLocation loc, of->table.Locate(block_index));
  if (!snap_journal_.loaded()) {
    // Never claim the region just to answer a query.
    RHODOS_ASSIGN_OR_RETURN(const bool present, snap_journal_.Probe());
    if (!present) return std::uint32_t{1};
    RHODOS_RETURN_IF_ERROR(snap_journal_.Ensure());
  }
  return snap_journal_.map().CountOf(loc.disk, loc.first_fragment);
}

Result<bool> FileService::HasSharedRuns(FileId id) {
  RHODOS_ASSIGN_OR_RETURN(OpenFile * of, LoadTable(id));
  return of->table.HasSharedRuns();
}

Status FileService::TestSetShareCount(DiskId disk, FragmentIndex first_fragment,
                                      std::uint32_t block_count,
                                      std::uint32_t count) {
  RHODOS_RETURN_IF_ERROR(snap_journal_.Ensure());
  snap_journal_.map().SetCount(disk, first_fragment, block_count, count);
  return OkStatus();
}

// --- failure model --------------------------------------------------------------

void FileService::Crash() {
  // Notify first: the callback table layered above is volatile state too,
  // and must be dropped (with a grace period covering outstanding leases)
  // rather than broken — there is no server left to send the breaks.
  if (crash_listener_) crash_listener_();
  for (const auto& [key, entry] : cache_) NoteDropped(entry);
  cache_.clear();
  lru_.clear();
  open_files_.clear();
  // The share map and journal head are volatile; RecoverSnapshots rebuilds
  // them from the stable region.
  snap_journal_.Reset();
  // Dirty delayed-write data died with the volatile state, so any file a
  // client cached before the crash may have silently reverted to older
  // contents. Bump every version so those caches revalidate.
  for (auto& [id, v] : versions_) ++v;
}

std::uint64_t FileService::Version(FileId id) const {
  auto it = versions_.find(id);
  return it == versions_.end() ? config_.version_base + 1 : it->second;
}

void FileService::BumpVersion(FileId id) {
  // First mutation moves the file from the implicit version 1 to 2
  // (relative to this service's salt).
  auto [it, inserted] = versions_.emplace(id, config_.version_base + 2);
  if (!inserted) ++it->second;
  // Break-before-reply: BumpVersion runs inside the mutating operation, so
  // the listener's callback breaks land before the mutation's reply.
  if (mutation_listener_) mutation_listener_(id, it->second);
}

}  // namespace rhodos::file
