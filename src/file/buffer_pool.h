// Fragment-pool and block-pool (paper §5).
//
// "The space for caching a fragment and block is acquired from a
// fragment-pool and block-pool, respectively. The size of these pools is
// determined on the basis of the amount of main memory available. These
// pools of free buffers are maintained by the file agent, transaction agent
// and the file service."
//
// A BufferPool hands out fixed-size buffers through RAII handles; when the
// pool is exhausted the caller must evict (or degrade to uncached
// operation), which is how cache capacity limits propagate to the caching
// layers above.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.h"

namespace rhodos::file {

class BufferPool;

// RAII handle to one pooled buffer; returns it to the pool on destruction.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(BufferPool* pool, std::vector<std::uint8_t> storage)
      : pool_(pool), storage_(std::move(storage)) {}

  PooledBuffer(PooledBuffer&& other) noexcept { *this = std::move(other); }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    Release();
    pool_ = std::exchange(other.pool_, nullptr);
    storage_ = std::move(other.storage_);
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  std::uint8_t* data() { return storage_.data(); }
  const std::uint8_t* data() const { return storage_.data(); }
  std::size_t size() const { return storage_.size(); }
  std::span<std::uint8_t> span() { return storage_; }
  std::span<const std::uint8_t> span() const { return storage_; }

 private:
  void Release();

  BufferPool* pool_{nullptr};
  std::vector<std::uint8_t> storage_;
};

struct BufferPoolStats {
  std::uint64_t acquires = 0;
  std::uint64_t exhaustions = 0;  // Acquire() refused: pool empty
  std::size_t outstanding = 0;
};

class BufferPool {
 public:
  // `buffer_bytes` is kFragmentSize for a fragment pool, kBlockSize for a
  // block pool; `capacity` is the number of buffers the pool owns.
  BufferPool(std::size_t buffer_bytes, std::size_t capacity)
      : buffer_bytes_(buffer_bytes), capacity_(capacity) {
    free_.reserve(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
      free_.emplace_back(buffer_bytes, 0);
    }
  }

  std::size_t buffer_bytes() const { return buffer_bytes_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t available() const { return free_.size(); }

  // Returns a zero-filled buffer, or nullopt when the pool is exhausted.
  std::optional<PooledBuffer> Acquire() {
    ++stats_.acquires;
    if (free_.empty()) {
      ++stats_.exhaustions;
      return std::nullopt;
    }
    std::vector<std::uint8_t> storage = std::move(free_.back());
    free_.pop_back();
    std::fill(storage.begin(), storage.end(), std::uint8_t{0});
    ++stats_.outstanding;
    return PooledBuffer{this, std::move(storage)};
  }

  const BufferPoolStats& stats() const { return stats_; }

 private:
  friend class PooledBuffer;

  void Return(std::vector<std::uint8_t> storage) {
    assert(storage.size() == buffer_bytes_);
    free_.push_back(std::move(storage));
    --stats_.outstanding;
  }

  std::size_t buffer_bytes_;
  std::size_t capacity_;
  std::vector<std::vector<std::uint8_t>> free_;
  BufferPoolStats stats_;
};

inline void PooledBuffer::Release() {
  if (pool_ != nullptr) {
    pool_->Return(std::move(storage_));
    pool_ = nullptr;
  }
}

}  // namespace rhodos::file
