// The snapshot journal: durability for share-count edits (snapshots,
// clones, COW splits, refcounted releases).
//
// The facility's invariant is that a block is freed exactly when its share
// count reaches zero and that share counts only ever change under this
// journal. Each operation is committed with ONE stable-storage force of an
// op record carrying *absolute* piece counts (idempotent to replay), then
// applied (index-table rewrites, bitmap edits, frees), then marked Done.
// Recovery replays every op record in order to rebuild the ShareMap and
// re-applies any op without a Done marker — the apply step is idempotent,
// so a crash at any stable-write boundary yields all-or-nothing.
//
// On disk the journal owns a reserved region at the TAIL of disk 0 (one
// region per file-service shard, indexed by `slot`), written exclusively
// to stable storage like the intention log:
//
//   [checkpoint slot A][checkpoint slot B][append-only op log]
//
// checkpoint: [u32 "RSNC"][u64 seq][u32 len][ShareMap image][u64 fnv64]
// log record: [u32 "RSNL"][u32 len][op or done payload][u64 fnv64]
//
// Checkpoints alternate between the two slots (highest valid seq wins), so
// a crash mid-checkpoint leaves the previous image intact. A checkpoint is
// only taken at quiescence (no pending op), which keeps the common-path
// snapshot cost O(1): one op force + one done force.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/result.h"
#include "common/serializer.h"
#include "common/types.h"
#include "disk/disk_registry.h"
#include "file/file_types.h"
#include "file/share_map.h"

namespace rhodos::file {

enum class SnapOpKind : std::uint8_t {
  kImage = 1,     // snapshot or clone capture
  kCowSplit = 2,  // copy-on-write split of a shared range
  kRelease = 3,   // refcounted release (delete / truncate / shadow rebind)
};

// Absolute share count to install for a run of blocks (idempotent).
struct SnapRefEdit {
  DiskId disk;
  FragmentIndex first_fragment;
  std::uint32_t block_count;
  std::uint32_t count;
};

// A fragment range whose share count reached zero: freed at apply.
struct SnapFree {
  DiskId disk;
  FragmentIndex first_fragment;
  std::uint32_t fragment_count;
};

// One journaled operation. Only the fields relevant to `kind` are set.
struct SnapOp {
  std::uint64_t seq = 0;  // assigned by LogOp
  SnapOpKind kind{SnapOpKind::kImage};
  FileId file{};    // kImage: the new image id; else the mutated file
  FileId source{};  // kImage: capture source
  std::uint8_t image_flags = 0;     // kImage: kImageSnapshot / kImageClone
  std::uint64_t first_block = 0;    // kCowSplit / kRelease(rebind)
  std::uint32_t block_count = 0;    // kCowSplit / kRelease(rebind)
  DiskId new_disk{};                // kCowSplit / kRelease(rebind)
  FragmentIndex new_fragment = 0;
  bool rebind = false;     // kRelease: also rebind [first_block, +count)
  bool scrub_fit = false;  // kRelease: scrub + free the file's index table
  bool truncate = false;   // kRelease: truncate the table to `first_block`
  std::vector<SnapRefEdit> ref_edits;
  std::vector<SnapFree> frees;
};

struct SnapJournalStats {
  std::uint64_t ops_logged = 0;
  std::uint64_t dones_logged = 0;
  std::uint64_t forces = 0;       // stable region writes issued
  std::uint64_t checkpoints = 0;
  std::uint64_t replayed_ops = 0;  // op records scanned at recovery
  std::uint64_t torn_records_skipped = 0;
};

class SnapJournal {
 public:
  // The journal claims `region_fragments` fragments at the tail of disk 0,
  // `slot` regions up from the end (slot = the owning shard's index, so
  // shards sharing the substrate never collide).
  SnapJournal(disk::DiskRegistry* disks, std::uint64_t region_fragments,
              std::uint32_t slot);

  // Claims (first use) or adopts (after restart) the region, loading the
  // checkpoint and replaying the log into `map()`. Idempotent; cheap once
  // loaded. Every other method requires a successful Ensure first.
  Status Ensure();
  bool loaded() const { return loaded_; }

  // True when the region already holds a journal (region allocated and a
  // valid checkpoint frame in either slot) — i.e. recovery should adopt
  // it. Never claims or writes, so a facility that has never snapshotted
  // pays nothing at recovery.
  Result<bool> Probe();

  ShareMap& map() { return map_; }
  const ShareMap& map() const { return map_; }

  // Commit point: assigns a sequence number, appends the op record and
  // forces it to stable storage, and applies its ref_edits to the in-memory
  // map. After this returns OK the operation WILL survive any crash.
  Result<std::uint64_t> LogOp(SnapOp& op);

  // Marks `seq` applied. At quiescence with the log nearly full, rewrites
  // the checkpoint and resets the log.
  Status LogDone(std::uint64_t seq);

  // Ops whose Done marker is missing, in sequence order (recovery redo
  // list). Cleared by the call.
  std::vector<SnapOp> TakePending();

  // Machine crash: volatile state (map, head, pending) is lost; the region
  // on stable storage survives. The next Ensure reloads everything.
  void Reset();

  // Region geometry, for fsck's reserved-range accounting.
  DiskId RegionDisk() const { return DiskId{0}; }
  FragmentIndex RegionFirst() const { return region_first_; }
  std::uint64_t RegionFragments() const { return region_fragments_; }

  const SnapJournalStats& stats() const { return stats_; }

 private:
  Status WriteCheckpoint();
  Status ForceLog(std::uint64_t begin_byte, std::uint64_t end_byte);
  Status AppendRecord(std::span<const std::uint8_t> payload);

  disk::DiskRegistry* disks_;
  std::uint64_t region_fragments_;
  std::uint32_t slot_;

  bool loaded_ = false;
  FragmentIndex region_first_ = 0;
  FragmentIndex log_first_ = 0;    // first fragment of the log area
  std::uint64_t log_bytes_ = 0;    // capacity of the log area
  std::uint64_t ckpt_slot_fragments_ = 0;

  ShareMap map_;
  std::vector<std::uint8_t> log_image_;  // in-memory copy of the log area
  std::uint64_t head_ = 0;               // log append offset
  std::uint64_t next_seq_ = 1;
  std::uint64_t ckpt_seq_ = 0;           // seq covered by last checkpoint
  std::uint8_t ckpt_slot_ = 0;           // slot the NEXT checkpoint targets
  std::set<std::uint64_t> pending_seqs_;
  std::vector<SnapOp> pending_ops_;      // recovered, not yet re-applied
  SnapJournalStats stats_;
};

// Serialization shared with tests.
void SerializeSnapOp(Serializer& out, const SnapOp& op);
Result<SnapOp> DeserializeSnapOp(Deserializer& in);

}  // namespace rhodos::file
