// The file index table (paper §5).
//
// "The sequence of block descriptors is stored in a separate data structure
// called a file index table. ... the file index table stores along with
// each block descriptor a two byte count to indicate the number of
// contiguous successive disk blocks", plus the file-specific attributes.
//
// In-memory the table is a sequence of *runs*: each BlockDescriptor covers
// `contiguous_count` physically contiguous blocks. On disk:
//
//   * the table itself lives in ONE 2 KiB fragment (control data is stored
//     in fragments — §4), holding the attributes, up to kDirectRuns run
//     descriptors (the direct blocks), and up to kIndirectRefs references
//     to indirect blocks;
//   * each indirect block is one 8 KiB data block holding up to
//     kRunsPerIndirectBlock further run descriptors (the indirect data
//     blocks are reached through these).
//
// With 64 direct runs of at least one 8 KiB block each, at least 0.5 MiB of
// file data is reachable directly from the table — the paper's headline
// "for files up to half a megabyte, the maximum number of disk references
// is two". Since every run may cover up to 65535 blocks and there can be
// tens of thousands of indexed runs, file size is unlimited for all
// practical purposes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/serializer.h"
#include "common/types.h"
#include "file/file_types.h"

namespace rhodos::file {

inline constexpr std::size_t kDirectRuns = 64;
// 56 indirect references keep the fragment-resident part within one 2 KiB
// fragment: 4 (magic) + 51 (attributes, incl. image lineage) + 8 (counts)
// + 64*16 (direct runs) + 4 (count) + 56*16 (indirect refs) = 1987 bytes.
inline constexpr std::size_t kIndirectRefs = 56;
// Serialized run: disk u32 + first_fragment u64 + count u16 + flags u16
// = 16 bytes.
inline constexpr std::size_t kRunBytes = 16;
// Each indirect block starts with a u32 run count, then the runs.
inline constexpr std::size_t kRunsPerIndirectBlock =
    (kBlockSize - 4) / kRunBytes;

// Where a logical block of the file physically lives.
struct BlockLocation {
  DiskId disk;
  FragmentIndex first_fragment;   // of the logical block
  // Number of logical blocks, starting with this one, that are physically
  // contiguous on `disk` (including this one). The read path turns this
  // directly into a single multi-block get_block.
  std::uint32_t contiguous_blocks;
  // Flags of the run the block lives in (kRunShared => COW before writing).
  std::uint16_t flags = 0;
};

class FileIndexTable {
 public:
  FileIndexTable() = default;

  FileAttributes& attributes() { return attributes_; }
  const FileAttributes& attributes() const { return attributes_; }

  // Number of logical blocks the table maps.
  std::uint64_t BlockCount() const { return total_blocks_; }

  // Number of runs (block descriptors).
  std::size_t RunCount() const { return runs_.size(); }
  const std::vector<BlockDescriptor>& runs() const { return runs_; }

  // Maps a logical block index to its physical location.
  Result<BlockLocation> Locate(std::uint64_t block_index) const;

  // Appends `count` blocks at (disk, first_fragment). Coalesces with the
  // previous run when physically adjacent on the same disk — this is how
  // the two-byte contiguity count grows. Runs with differing flags are
  // never coalesced (a shared run must keep its boundary).
  Status AppendRun(DiskId disk, FragmentIndex first_fragment,
                   std::uint32_t count, std::uint16_t flags = 0);

  // Appends a run verbatim (flags included). Used when duplicating another
  // table's run list for a snapshot or clone image.
  Status AppendDescriptor(const BlockDescriptor& run) {
    return AppendRun(run.disk, run.first_fragment, run.contiguous_count,
                     run.flags);
  }

  // Replaces the single logical block `block_index` so it now lives at
  // (disk, fragment). This is the shadow-page commit primitive; it may
  // split a run into up to three (the paper's observation that shadow
  // paging "destroys the contiguity of data blocks" falls out of this).
  // The side pieces inherit the donor run's flags; the replacement block
  // itself carries `flags` (freshly allocated shadow blocks are exclusive).
  Status ReplaceBlock(std::uint64_t block_index, DiskId disk,
                      FragmentIndex fragment, std::uint16_t flags = 0);

  // Rebinds logical blocks [first_block, first_block + count) — which must
  // lie within ONE existing run — to the physically contiguous range at
  // (disk, fragment) with the given flags. The COW-split primitive: the
  // donor side pieces keep their flags, the new piece is typically
  // exclusive (flags = 0).
  Status ReplaceRange(std::uint64_t first_block, std::uint32_t count,
                      DiskId disk, FragmentIndex fragment,
                      std::uint16_t flags = 0);

  // Marks every run shared. Used when capturing a snapshot/clone: both the
  // source table and the image table flip all their runs to kRunShared.
  void SetAllRunsShared();

  // Clears kRunShared on logical blocks [first_block, first_block + count),
  // splitting runs at the range boundaries when needed. Called when a COW
  // probe finds the refcount already back at one (lazy flag clearing).
  Status ClearSharedInRange(std::uint64_t first_block, std::uint32_t count);

  // True if any run still carries kRunShared. The txn service forces the
  // shadow-page technique for such files.
  bool HasSharedRuns() const {
    for (const auto& r : runs_) {
      if (r.shared()) return true;
    }
    return false;
  }

  // Drops every logical block at index >= new_block_count, returning the
  // freed physical runs so the caller can release them to the disk service.
  std::vector<BlockDescriptor> TruncateBlocks(std::uint64_t new_block_count);

  // True iff all blocks of the file form one physically contiguous run on a
  // single disk. The transaction service's WAL-vs-shadow choice tests this.
  bool FullyContiguous() const { return runs_.size() <= 1; }

  // Fraction of adjacent logical block pairs that are physically adjacent
  // (1.0 = fully contiguous). The contiguity metric reported by benches.
  double ContiguityIndex() const;

  // --- On-disk form -------------------------------------------------------

  // True while the table (attributes + direct runs) fits in the one
  // fragment without indirect blocks.
  bool NeedsIndirectBlocks() const { return runs_.size() > kDirectRuns; }

  // Serializes the fragment-resident part: attributes, the first
  // kDirectRuns runs, and the locations of the indirect blocks (which the
  // caller must have provisioned when NeedsIndirectBlocks()). Fits in one
  // fragment; asserts on overflow.
  void SerializeFragment(Serializer& out,
                         const std::vector<BlockDescriptor>& indirect_blocks)
      const;

  // Serializes indirect block `i` (runs [kDirectRuns + i*kRunsPerIndirectBlock
  // ...]) into exactly kBlockSize bytes.
  std::vector<std::uint8_t> SerializeIndirectBlock(std::size_t i) const;

  // Number of indirect blocks the current run list requires.
  std::size_t IndirectBlockCount() const;

  Status ParseIndirectBlock(std::span<const std::uint8_t> block);

 private:
  friend Result<struct FitParseResult> ParseFitFragment(
      std::span<const std::uint8_t> fragment);

  void RecomputeTotals();

  FileAttributes attributes_;
  std::vector<BlockDescriptor> runs_;
  // Prefix sums: cumulative_[i] = number of logical blocks before run i.
  std::vector<std::uint64_t> cumulative_;
  std::uint64_t total_blocks_ = 0;
};

// Result of parsing the fragment-resident part of a table: the table (with
// its direct runs) plus the locations of the indirect blocks the caller must
// fetch and feed to ParseIndirectBlock.
struct FitParseResult {
  FileIndexTable table;
  std::vector<BlockDescriptor> indirect_blocks;
};

Result<FitParseResult> ParseFitFragment(
    std::span<const std::uint8_t> fragment);

}  // namespace rhodos::file
