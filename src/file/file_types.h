// Shared vocabulary of the file facility's file layer (paper §5).
#pragma once

#include <cstdint>

#include "common/sim_clock.h"
#include "common/types.h"

namespace rhodos::file {

// "At any moment a file can be used either as a basic file ... or as a
// transaction file" (§2.2). The service type is a file-specific attribute
// recorded in the file index table.
enum class ServiceType : std::uint8_t { kBasic = 0, kTransaction = 1 };

// Locking granularity of the transaction service (§6.1); recorded per file
// as the "locking level" attribute.
enum class LockLevel : std::uint8_t { kRecord = 0, kPage = 1, kFile = 2 };

// File-specific attributes stored in the file index table (§5): "file size;
// date and time of file creation; last read access; a reference count ...;
// service type ...; locking level ...; and space ... for storing the
// file-specific attributes."
// Image lineage of a file (attribute bits). A snapshot is an immutable
// point-in-time image sharing its blocks with the origin under refcounted
// copy-on-write; a clone is a writable file whose index initially aliases
// the origin the same way.
inline constexpr std::uint8_t kImageSnapshot = 0x01;
inline constexpr std::uint8_t kImageClone = 0x02;

struct FileAttributes {
  std::uint64_t size = 0;          // bytes
  SimTime created_time = 0;
  SimTime last_read_time = 0;
  std::uint32_t ref_count = 0;     // simultaneous opens
  // How often the file has been read or written since creation; the
  // transaction service consults this to suggest a default locking level
  // (§7: "it exploits the knowledge of how frequently a file is used").
  std::uint64_t access_count = 0;
  ServiceType service_type = ServiceType::kBasic;
  LockLevel locking_level = LockLevel::kPage;
  std::uint32_t extra_space = 0;   // extension attribute bytes reserved
  // Snapshot/clone lineage: kImage* bits and the FileId of the file this
  // image was captured from (0 = not an image). Snapshots are immutable.
  std::uint8_t image_flags = 0;
  std::uint64_t origin = 0;

  bool immutable() const { return (image_flags & kImageSnapshot) != 0; }

  friend bool operator==(const FileAttributes&,
                         const FileAttributes&) = default;
};

// The system name of a file encodes where its file index table lives:
// the disk and the fragment of the table. This is what makes the three-step
// location procedure of §5 work — step one (finding the file service) is
// the agents' job, step two is a direct read of this address.
constexpr FileId MakeFileId(DiskId disk, FragmentIndex fit_fragment) {
  return FileId{(static_cast<std::uint64_t>(disk.value) << 40) |
                (fit_fragment & ((1ULL << 40) - 1))};
}
constexpr DiskId FileDisk(FileId id) {
  return DiskId{static_cast<std::uint32_t>(id.value >> 40)};
}
constexpr FragmentIndex FileFitFragment(FileId id) {
  return id.value & ((1ULL << 40) - 1);
}

}  // namespace rhodos::file
