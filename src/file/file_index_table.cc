#include "file/file_index_table.h"

#include <algorithm>
#include <cassert>

namespace rhodos::file {

namespace {

constexpr std::uint32_t kFitMagic = 0x52464954;  // "RFIT"

void SerializeRun(Serializer& out, const BlockDescriptor& run) {
  out.U32(run.disk.value);
  out.U64(run.first_fragment);
  out.U16(run.contiguous_count);
  // The former pad bytes carry the run flags (kRunShared): old tables read
  // back with flags 0, which is exactly "nothing shared".
  out.U16(run.flags);
}

BlockDescriptor DeserializeRun(Deserializer& in) {
  BlockDescriptor run;
  run.disk = DiskId{in.U32()};
  run.first_fragment = in.U64();
  run.contiguous_count = in.U16();
  run.flags = in.U16();
  return run;
}

void SerializeAttributes(Serializer& out, const FileAttributes& a) {
  out.U64(a.size);
  out.I64(a.created_time);
  out.I64(a.last_read_time);
  out.U32(a.ref_count);
  out.U64(a.access_count);
  out.U8(static_cast<std::uint8_t>(a.service_type));
  out.U8(static_cast<std::uint8_t>(a.locking_level));
  out.U32(a.extra_space);
  out.U8(a.image_flags);
  out.U64(a.origin);
}

FileAttributes DeserializeAttributes(Deserializer& in) {
  FileAttributes a;
  a.size = in.U64();
  a.created_time = in.I64();
  a.last_read_time = in.I64();
  a.ref_count = in.U32();
  a.access_count = in.U64();
  a.service_type = static_cast<ServiceType>(in.U8());
  a.locking_level = static_cast<LockLevel>(in.U8());
  a.extra_space = in.U32();
  a.image_flags = in.U8();
  a.origin = in.U64();
  return a;
}

}  // namespace

void FileIndexTable::RecomputeTotals() {
  cumulative_.resize(runs_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    cumulative_[i] = total;
    total += runs_[i].contiguous_count;
  }
  total_blocks_ = total;
}

Result<BlockLocation> FileIndexTable::Locate(std::uint64_t block_index) const {
  if (block_index >= total_blocks_) {
    return Error{ErrorCode::kBadAddress,
                 "logical block " + std::to_string(block_index) +
                     " beyond end of file"};
  }
  // Binary search over prefix sums for the run covering block_index.
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(),
                                   block_index);
  const std::size_t run_idx =
      static_cast<std::size_t>(it - cumulative_.begin()) - 1;
  const BlockDescriptor& run = runs_[run_idx];
  const std::uint64_t offset_in_run = block_index - cumulative_[run_idx];
  return BlockLocation{
      run.disk,
      run.first_fragment + offset_in_run * kFragmentsPerBlock,
      static_cast<std::uint32_t>(run.contiguous_count - offset_in_run),
      run.flags};
}

Status FileIndexTable::AppendRun(DiskId disk, FragmentIndex first_fragment,
                                 std::uint32_t count, std::uint16_t flags) {
  if (count == 0) {
    return {ErrorCode::kInvalidArgument, "empty run"};
  }
  // Coalesce with the last run when physically adjacent: the contiguity
  // count is capped at 16 bits per descriptor. Never merge across a flag
  // boundary — a shared run must stay a distinct descriptor.
  if (!runs_.empty()) {
    BlockDescriptor& last = runs_.back();
    const FragmentIndex last_end =
        last.first_fragment +
        static_cast<FragmentIndex>(last.contiguous_count) *
            kFragmentsPerBlock;
    if (last.disk == disk && last_end == first_fragment &&
        last.flags == flags && last.contiguous_count + count <= 0xFFFF) {
      last.contiguous_count = static_cast<std::uint16_t>(
          last.contiguous_count + count);
      RecomputeTotals();
      return OkStatus();
    }
  }
  while (count > 0) {
    const auto chunk = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(count, 0xFFFF));
    runs_.push_back(BlockDescriptor{disk, first_fragment, chunk, flags});
    first_fragment += static_cast<FragmentIndex>(chunk) * kFragmentsPerBlock;
    count -= chunk;
  }
  RecomputeTotals();
  return OkStatus();
}

Status FileIndexTable::ReplaceBlock(std::uint64_t block_index, DiskId disk,
                                    FragmentIndex fragment,
                                    std::uint16_t flags) {
  return ReplaceRange(block_index, 1, disk, fragment, flags);
}

Status FileIndexTable::ReplaceRange(std::uint64_t first_block,
                                    std::uint32_t count, DiskId disk,
                                    FragmentIndex fragment,
                                    std::uint16_t flags) {
  if (count == 0) {
    return {ErrorCode::kInvalidArgument, "empty replacement range"};
  }
  if (first_block + count > total_blocks_) {
    return {ErrorCode::kBadAddress, "replace beyond end of file"};
  }
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(),
                                   first_block);
  const std::size_t run_idx =
      static_cast<std::size_t>(it - cumulative_.begin()) - 1;
  BlockDescriptor run = runs_[run_idx];
  const std::uint64_t off = first_block - cumulative_[run_idx];
  if (off + count > run.contiguous_count) {
    return {ErrorCode::kBadAddress, "replacement range spans runs"};
  }

  // Side pieces inherit the donor's flags (still possibly shared); the new
  // piece carries its own flags.
  std::vector<BlockDescriptor> replacement;
  if (off > 0) {
    replacement.push_back(BlockDescriptor{run.disk, run.first_fragment,
                                          static_cast<std::uint16_t>(off),
                                          run.flags});
  }
  replacement.push_back(BlockDescriptor{
      disk, fragment, static_cast<std::uint16_t>(count), flags});
  if (off + count < run.contiguous_count) {
    replacement.push_back(BlockDescriptor{
        run.disk, run.first_fragment + (off + count) * kFragmentsPerBlock,
        static_cast<std::uint16_t>(run.contiguous_count - off - count),
        run.flags});
  }
  runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(run_idx));
  runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(run_idx),
               replacement.begin(), replacement.end());
  RecomputeTotals();
  return OkStatus();
}

void FileIndexTable::SetAllRunsShared() {
  for (auto& r : runs_) r.flags |= kRunShared;
}

Status FileIndexTable::ClearSharedInRange(std::uint64_t first_block,
                                          std::uint32_t count) {
  if (count == 0) return OkStatus();
  if (first_block + count > total_blocks_) {
    return {ErrorCode::kBadAddress, "clear-shared beyond end of file"};
  }
  const std::uint64_t range_end = first_block + count;
  std::vector<BlockDescriptor> rebuilt;
  rebuilt.reserve(runs_.size() + 2);
  std::uint64_t start = 0;
  for (const auto& run : runs_) {
    const std::uint64_t end = start + run.contiguous_count;
    const std::uint64_t lo = std::max(start, first_block);
    const std::uint64_t hi = std::min(end, range_end);
    if (lo >= hi || !run.shared()) {
      rebuilt.push_back(run);
    } else {
      if (lo > start) {
        rebuilt.push_back(BlockDescriptor{
            run.disk, run.first_fragment,
            static_cast<std::uint16_t>(lo - start), run.flags});
      }
      rebuilt.push_back(BlockDescriptor{
          run.disk,
          run.first_fragment + (lo - start) * kFragmentsPerBlock,
          static_cast<std::uint16_t>(hi - lo),
          static_cast<std::uint16_t>(run.flags & ~kRunShared)});
      if (hi < end) {
        rebuilt.push_back(BlockDescriptor{
            run.disk,
            run.first_fragment + (hi - start) * kFragmentsPerBlock,
            static_cast<std::uint16_t>(end - hi), run.flags});
      }
    }
    start = end;
  }
  runs_ = std::move(rebuilt);
  RecomputeTotals();
  return OkStatus();
}

std::vector<BlockDescriptor> FileIndexTable::TruncateBlocks(
    std::uint64_t new_block_count) {
  std::vector<BlockDescriptor> freed;
  if (new_block_count >= total_blocks_) return freed;
  std::uint64_t kept = 0;
  std::size_t i = 0;
  for (; i < runs_.size(); ++i) {
    if (kept + runs_[i].contiguous_count > new_block_count) break;
    kept += runs_[i].contiguous_count;
  }
  // Run i straddles (or starts at) the cut.
  if (i < runs_.size() && kept < new_block_count) {
    const auto keep_in_run =
        static_cast<std::uint16_t>(new_block_count - kept);
    BlockDescriptor& run = runs_[i];
    // The cut portion keeps the run's flags: a shared straddling run must
    // release as SHARED, or the releaser frees blocks a snapshot still
    // claims.
    freed.push_back(BlockDescriptor{
        run.disk,
        run.first_fragment +
            static_cast<FragmentIndex>(keep_in_run) * kFragmentsPerBlock,
        static_cast<std::uint16_t>(run.contiguous_count - keep_in_run),
        run.flags});
    run.contiguous_count = keep_in_run;
    ++i;
  }
  for (std::size_t j = i; j < runs_.size(); ++j) freed.push_back(runs_[j]);
  runs_.resize(i);
  RecomputeTotals();
  return freed;
}

double FileIndexTable::ContiguityIndex() const {
  if (total_blocks_ <= 1) return 1.0;
  // Adjacent pairs within a run are contiguous; pairs across run boundaries
  // are not (runs are maximal by construction of AppendRun, and ReplaceBlock
  // only ever splits).
  std::uint64_t contiguous_pairs = 0;
  for (const auto& run : runs_) {
    contiguous_pairs += run.contiguous_count - 1;
  }
  return static_cast<double>(contiguous_pairs) /
         static_cast<double>(total_blocks_ - 1);
}

std::size_t FileIndexTable::IndirectBlockCount() const {
  if (runs_.size() <= kDirectRuns) return 0;
  return (runs_.size() - kDirectRuns + kRunsPerIndirectBlock - 1) /
         kRunsPerIndirectBlock;
}

void FileIndexTable::SerializeFragment(
    Serializer& out, const std::vector<BlockDescriptor>& indirect_blocks)
    const {
  assert(indirect_blocks.size() == IndirectBlockCount());
  assert(indirect_blocks.size() <= kIndirectRefs);
  out.U32(kFitMagic);
  SerializeAttributes(out, attributes_);
  const auto direct =
      static_cast<std::uint32_t>(std::min(runs_.size(), kDirectRuns));
  out.U32(direct);
  out.U32(static_cast<std::uint32_t>(runs_.size()));
  for (std::uint32_t i = 0; i < direct; ++i) SerializeRun(out, runs_[i]);
  out.U32(static_cast<std::uint32_t>(indirect_blocks.size()));
  for (const auto& ib : indirect_blocks) SerializeRun(out, ib);
  assert(out.size() <= kFragmentSize);
}

std::vector<std::uint8_t> FileIndexTable::SerializeIndirectBlock(
    std::size_t i) const {
  Serializer out;
  const std::size_t begin = kDirectRuns + i * kRunsPerIndirectBlock;
  const std::size_t end =
      std::min(runs_.size(), begin + kRunsPerIndirectBlock);
  assert(begin < runs_.size());
  out.U32(static_cast<std::uint32_t>(end - begin));
  for (std::size_t r = begin; r < end; ++r) SerializeRun(out, runs_[r]);
  std::vector<std::uint8_t> block = std::move(out).Take();
  block.resize(kBlockSize, 0);
  return block;
}

Result<FitParseResult> ParseFitFragment(
    std::span<const std::uint8_t> fragment) {
  Deserializer in{fragment};
  if (in.U32() != kFitMagic) {
    return Error{ErrorCode::kMediaError, "not a file index table"};
  }
  FitParseResult result;
  result.table.attributes_ = DeserializeAttributes(in);
  const std::uint32_t direct = in.U32();
  const std::uint32_t total_runs = in.U32();
  if (!in.ok() || direct > kDirectRuns || direct > total_runs) {
    return Error{ErrorCode::kMediaError, "corrupt file index table header"};
  }
  for (std::uint32_t i = 0; i < direct; ++i) {
    result.table.runs_.push_back(DeserializeRun(in));
  }
  const std::uint32_t n_indirect = in.U32();
  if (!in.ok() || n_indirect > kIndirectRefs) {
    return Error{ErrorCode::kMediaError, "corrupt indirect reference list"};
  }
  for (std::uint32_t i = 0; i < n_indirect; ++i) {
    result.indirect_blocks.push_back(DeserializeRun(in));
  }
  if (!in.ok()) {
    return Error{ErrorCode::kMediaError, "truncated file index table"};
  }
  result.table.RecomputeTotals();
  return result;
}

Status FileIndexTable::ParseIndirectBlock(
    std::span<const std::uint8_t> block) {
  Deserializer in{block};
  const std::uint32_t n = in.U32();
  if (!in.ok() || n > kRunsPerIndirectBlock) {
    return {ErrorCode::kMediaError, "corrupt indirect block"};
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    runs_.push_back(DeserializeRun(in));
  }
  if (!in.ok()) {
    return {ErrorCode::kMediaError, "truncated indirect block"};
  }
  RecomputeTotals();
  return OkStatus();
}

}  // namespace rhodos::file
