// The RHODOS basic file service (paper §5).
//
// A *flat* file service: "concerned only with implementing operations on a
// set of files without concern for any structure or relationship between
// the files." Files are mutable (like NFS/LOCUS, unlike Amoeba). The
// service:
//
//  * keeps each file's block descriptors in a file index table stored in
//    one 2 KiB fragment, created dynamically and contiguous with the first
//    data block ("eliminating the seek time to retrieve the first data
//    block");
//  * exploits the per-descriptor contiguity count so a run of n contiguous
//    blocks costs ONE get_block instead of n;
//  * persists every file index table to stable storage ("a copy of the
//    file index table is always available in stable storage");
//  * caches data blocks in buffers from its block pool with a
//    delayed-write policy for basic files and write-through for
//    transaction files ("the delayed-write together with write-through
//    policies are adapted");
//  * may partition a file across disks — consecutive extents are placed by
//    the registry's policy, which is how striping arises.
//
// The positional Read/Write here are the paper's pread/pwrite; the
// stateful read/write/lseek cursor lives in the client's file agent, which
// is what makes the service "nearly stateless" (§3).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "common/types.h"
#include "disk/disk_registry.h"
#include "file/buffer_pool.h"
#include "file/file_index_table.h"
#include "file/file_types.h"
#include "file/snap_journal.h"
#include "obs/observability.h"

namespace rhodos::file {

struct FileServiceConfig {
  // Block-cache capacity, in 8 KiB buffers (the block pool of §5).
  std::size_t block_pool_capacity = 256;
  // Fragment-pool capacity (file index tables cached in memory).
  std::size_t fragment_pool_capacity = 128;
  // Write policy for BASIC files; transaction files always write through.
  disk::WritePolicy basic_write_policy = disk::WritePolicy::kDelayed;
  // Largest extent allocated at once when a file grows, in blocks. Growth
  // beyond this rolls to the next disk under the registry's round-robin
  // policy — the striping unit of experiment E10.
  std::uint32_t extent_blocks = 64;
  // When true, a growing file first tries to extend its last extent in
  // place (AllocateSpecific), preserving contiguity.
  bool extend_in_place = true;
  // Sequential read-ahead: after `readahead_trigger` consecutive reads that
  // each pick up where the previous one ended, prefetch up to
  // `readahead_blocks` blocks past the read into the block cache (extended
  // to the next track boundary when the run allows). Any seek cancels the
  // streak. 0 blocks disables read-ahead.
  std::uint32_t readahead_trigger = 2;
  std::uint32_t readahead_blocks = 16;
  // Added to every version token this service hands out. The sharded
  // facility salts each shard's tokens (shard id in the top byte) so tokens
  // minted by different shards can never alias: after a failover reroutes a
  // file, the first reply from the new shard is guaranteed to look like a
  // foreign write to the client agent, which drops its clean cached blocks.
  std::uint64_t version_base = 0;
  // Snapshot journal region reserved at the tail of disk 0 (checkpoints +
  // op log for share-count durability), and which tail slot this service
  // owns — the sharded facility gives each shard its own slot so shards
  // sharing the substrate never collide. The region is only claimed on
  // first snapshot/clone use.
  std::uint64_t snapshot_region_fragments = 256;
  std::uint32_t snapshot_region_slot = 0;
};

struct FileServiceStats {
  std::uint64_t cache_hits = 0;     // blocks served from the block cache
  std::uint64_t cache_misses = 0;
  std::uint64_t reads = 0;          // Read() calls
  std::uint64_t writes = 0;         // Write() calls
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t fit_loads = 0;      // file index tables read from disk
  std::uint64_t fit_stores = 0;     // file index tables persisted
  std::uint64_t readahead_issued = 0;  // blocks prefetched speculatively
  std::uint64_t readahead_hits = 0;    // prefetched blocks later read
  std::uint64_t readahead_wasted = 0;  // prefetched blocks dropped unread
  std::uint64_t snapshots = 0;         // Snapshot() captures
  std::uint64_t clones = 0;            // Clone() captures
  std::uint64_t cow_splits = 0;        // journaled copy-on-write splits
  std::uint64_t cow_blocks_copied = 0; // blocks copied by COW splits
  std::uint64_t shared_releases = 0;   // journaled refcounted releases
};

class FileService {
 public:
  FileService(disk::DiskRegistry* disks, SimClock* clock,
              FileServiceConfig config = {});

  FileService(const FileService&) = delete;
  FileService& operator=(const FileService&) = delete;

  // --- The paper's file operations (§5) ------------------------------------
  // create, open, delete, read(=pread), write(=pwrite), get-attribute,
  // close. lseek and the sequential read/write are client-agent state.

  // Creates a file. `size_hint` (bytes) preallocates that much contiguous
  // space together with the index table, which is what gives small files
  // their one-seek layout.
  Result<FileId> Create(ServiceType type, std::uint64_t size_hint = 0);

  Status Delete(FileId id);

  // Opens the file (loads and caches its index table, bumps ref_count).
  Status Open(FileId id);
  Status Close(FileId id);

  Result<std::uint64_t> Read(FileId id, std::uint64_t offset,
                             std::span<std::uint8_t> out);
  Result<std::uint64_t> Write(FileId id, std::uint64_t offset,
                              std::span<const std::uint8_t> in);

  Result<FileAttributes> GetAttributes(FileId id);
  Status SetServiceType(FileId id, ServiceType type);
  Status SetLockLevel(FileId id, LockLevel level);

  // Truncates or extends the file to `size` bytes.
  Status Resize(FileId id, std::uint64_t size);

  // --- Snapshots and clones (E23) ------------------------------------------

  // Captures the file's current content as a new immutable image. O(1) in
  // file size: the image's index table references the SAME block runs as
  // the source (share counts bumped under the snapshot journal); no data
  // moves. Writes to the snapshot are refused (kPermissionDenied); writes
  // to the source copy-on-write split the shared runs.
  Result<FileId> Snapshot(FileId id);

  // As Snapshot, but the image is writable: a clone diverges from the
  // source block by block as either side is written.
  Result<FileId> Clone(FileId id);

  // Re-applies journaled snapshot operations missing their Done marker,
  // restoring the share map. Must run after disk recovery and BEFORE
  // transaction recovery (the intention log's shadow rebinds consult share
  // counts). A facility that never snapshotted pays one bitmap probe.
  Status RecoverSnapshots();

  // Share count of the block at `block_index` (1 = exclusively owned).
  Result<std::uint32_t> ShareCountOf(FileId id, std::uint64_t block_index);

  // True if any of the file's runs is marked shared (the txn service
  // forces the shadow-page technique for such files).
  Result<bool> HasSharedRuns(FileId id);

  // Blocks currently shared between two or more files (gauge).
  std::uint64_t SharedBlockCount() const {
    return snap_journal_.map().SharedBlockCount();
  }

  SnapJournal& snap_journal() { return snap_journal_; }

  // Test hook (fsck regressions): overwrites the STORED share count of a
  // run without journaling — i.e. manufactures exactly the corruption fsck
  // must catch. Never use outside tests.
  Status TestSetShareCount(DiskId disk, FragmentIndex first_fragment,
                           std::uint32_t block_count, std::uint32_t count);

  // Writes back all dirty cached blocks and the index table of `id`.
  Status Flush(FileId id);
  Status FlushAll();

  // --- Block-level interface for the transaction service -------------------

  // Number of logical 8 KiB blocks currently mapped.
  Result<std::uint64_t> BlockCount(FileId id);

  // Reads/writes one logical block (transaction page). Write goes through
  // the cache with the file's policy.
  Status ReadBlock(FileId id, std::uint64_t block_index,
                   std::span<std::uint8_t> out);
  Status WriteBlock(FileId id, std::uint64_t block_index,
                    std::span<const std::uint8_t> in,
                    bool force_write_through = false);

  // Physical location of a logical block (for WAL/shadow decisions).
  Result<BlockLocation> LocateBlock(FileId id, std::uint64_t block_index);

  // True iff the file's data blocks form one contiguous run — the paper's
  // criterion for choosing WAL over shadow paging at commit (§6.7).
  Result<bool> IsContiguous(FileId id);

  // Shadow-page commit primitive: rebinds logical block `block_index` to a
  // freshly written physical block at (disk, fragment); the old block is
  // freed. Persists the index table (original + stable).
  Status ReplaceBlock(FileId id, std::uint64_t block_index, DiskId disk,
                      FragmentIndex fragment);

  // Allocates one free block on the file's home disk (or any disk) without
  // linking it into any file — shadow-page staging space.
  Result<disk::DiskRegistry::Placement> AllocateShadowBlock(FileId id);

  // --- Failure model --------------------------------------------------------

  // Loss of the server machine's volatile state: block cache and cached
  // index tables vanish; dirty (delayed-write) data is lost.
  void Crash();

  // --- Coherence ------------------------------------------------------------

  // Per-file monotonic version token, bumped on every mutation (write,
  // block write/replace, resize, delete) and on a server crash (delayed
  // writes lost — cached copies of the pre-crash state must revalidate).
  // The file-service server piggybacks it on open/getattr/pread/pwrite
  // replies so client agents can invalidate stale cached blocks. Files
  // start at version 1; a deleted file's slot keeps counting so a FileId
  // reused at the same index table location cannot alias an old token.
  std::uint64_t Version(FileId id) const;

  // Fired from BumpVersion with the post-bump token, i.e. inside the
  // mutating operation, before its reply is assembled. The file-service
  // server hangs callback breaks off this hook so that every mutation path
  // (bus handlers, transaction commits, replication repair) revokes
  // outstanding callback promises before the mutation is acknowledged.
  using MutationListener = std::function<void(FileId, std::uint64_t)>;
  void SetMutationListener(MutationListener listener) {
    mutation_listener_ = std::move(listener);
  }

  // Fired at the start of Crash(): volatile server state (including any
  // callback table layered above) is lost, so the listener can drop its
  // table and start a grace period instead of fanning out breaks.
  using CrashListener = std::function<void()>;
  void SetCrashListener(CrashListener listener) {
    crash_listener_ = std::move(listener);
  }

  // --- Introspection --------------------------------------------------------

  const FileServiceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FileServiceStats{}; }

  // Installed by the facility; null means no tracing/metrics.
  void SetObservability(obs::Observability* o) { obs_ = o; }
  disk::DiskRegistry* disks() { return disks_; }
  SimClock* clock() { return clock_; }
  const FileServiceConfig& config() const { return config_; }

  // Contiguity of the file's layout, 1.0 = fully contiguous (bench metric).
  Result<double> ContiguityIndex(FileId id);

  // Physical runs of the file's data blocks and the locations of its
  // indirect blocks (consistency audits — see file/fsck.h).
  Result<std::vector<BlockDescriptor>> FileRuns(FileId id);
  Result<std::vector<BlockDescriptor>> IndirectBlockLocations(FileId id);

 private:
  struct OpenFile {
    FileIndexTable table;
    // On-disk locations of the table's indirect blocks (control data).
    std::vector<BlockDescriptor> indirect_blocks;
    bool table_dirty = false;
    // Soft attribute changes (access counts, timestamps): persisted at
    // flush/close, but not worth a synchronous table store per operation.
    bool attrs_dirty = false;
    std::uint32_t pins = 0;  // open handles
    // Sequential-access detector state for read-ahead: the byte offset the
    // next read would start at if the client is streaming, and how many
    // consecutive reads have matched it.
    std::uint64_t next_expected_offset = ~std::uint64_t{0};
    std::uint32_t sequential_streak = 0;
  };

  struct CacheKey {
    FileId file;
    std::uint64_t block;
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return std::hash<std::uint64_t>{}(k.file.value * 1000003ULL ^ k.block);
    }
  };
  struct CacheEntry {
    PooledBuffer buffer;  // kBlockSize bytes
    bool dirty = false;
    bool prefetched = false;  // brought in by read-ahead, not yet read
    std::list<CacheKey>::iterator lru_pos;
  };

  // Loads (or returns the already-loaded) index table of `id`.
  Result<OpenFile*> LoadTable(FileId id);

  // Shared Snapshot/Clone body: one kImage journal op.
  Result<FileId> CaptureImage(FileId id, std::uint8_t image_flags);

  // Copy-on-write: guarantees logical blocks [first_block, +count) of the
  // file are exclusively owned before they are overwritten, splitting
  // shared pieces (allocate + copy + journaled rebind) and lazily clearing
  // stale shared flags whose count already dropped back to one.
  Status EnsureExclusive(FileId id, OpenFile& of, std::uint64_t first_block,
                         std::uint64_t count);

  // One journaled COW split of a uniformly-shared piece; allocates the
  // copy target (falling back to smaller chunks), copies via the block
  // path, and rebinds. Returns the number of blocks handled (>= 1).
  Result<std::uint32_t> CowSplit(FileId id, OpenFile& of,
                                 std::uint64_t first_block,
                                 std::uint32_t count, std::uint32_t share);

  // Idempotent redo half of every journaled snapshot operation: bitmap
  // claims, index-table rewrites, share-count installs, frees. Called
  // once inline after LogOp and again from RecoverSnapshots for ops whose
  // Done marker is missing. May invalidate OpenFile pointers.
  Status ApplySnapOp(const SnapOp& op);

  // Builds the ref_edits (count - 1) and frees (count hit zero) for
  // releasing `run`, appending to `op`.
  void BuildRelease(const BlockDescriptor& run, SnapOp& op);

  // Drops every cache entry of `id` at logical block >= `from`.
  void PurgeCache(FileId id, std::uint64_t from);
  // Persists the table of `id` (fragment + indirect blocks) to original and
  // stable storage.
  Status StoreTable(FileId id, OpenFile& of);

  // Grows the file by `blocks` logical blocks, preferring in-place
  // extension, then fresh extents placed by the registry.
  Status Grow(FileId id, OpenFile& of, std::uint64_t blocks);

  // Cache plumbing.
  CacheEntry* CacheLookup(FileId id, std::uint64_t block);
  Result<CacheEntry*> CacheInsert(FileId id, std::uint64_t block,
                                  std::span<const std::uint8_t> data,
                                  bool dirty);
  Status EvictOne();
  Status WritebackEntry(const CacheKey& key, CacheEntry& entry);
  // Accounting hook for an entry leaving the cache (eviction, purge,
  // crash): an unread prefetched block counts as wasted read-ahead.
  void NoteDropped(const CacheEntry& entry) {
    if (entry.prefetched) ++stats_.readahead_wasted;
  }
  // Writes back every dirty cached block (of one file when `only` is
  // non-null, of all files otherwise) as per-disk vectored batches issued
  // under one overlapped section.
  Status WritebackDirty(const FileId* only);

  // Reads logical blocks [first, first+count) into out, coalescing
  // physically contiguous uncached spans into single disk references and
  // overlapping the per-disk sub-batches of a striped span set.
  Status ReadBlocks(FileId id, OpenFile& of, std::uint64_t first,
                    std::uint64_t count, std::span<std::uint8_t> out);

  // Speculatively fetches up to config_.readahead_blocks blocks starting at
  // `from` into the cache (track-aligned when the run allows), marking them
  // prefetched. Never fails the triggering read: errors are swallowed.
  Status ReadAhead(FileId id, OpenFile& of, std::uint64_t from);

  disk::WritePolicy PolicyFor(const OpenFile& of) const;

  void BumpVersion(FileId id);

  disk::DiskRegistry* disks_;
  SimClock* clock_;
  FileServiceConfig config_;
  SnapJournal snap_journal_;
  BufferPool block_pool_;
  BufferPool fragment_pool_;
  std::unordered_map<FileId, OpenFile> open_files_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::list<CacheKey> lru_;  // front = most recent
  // Mutation counters behind Version(). Entries outlive Delete on purpose
  // (see Version() comment); absent entries read as version 1.
  std::unordered_map<FileId, std::uint64_t> versions_;
  FileServiceStats stats_;
  obs::Observability* obs_ = nullptr;
  MutationListener mutation_listener_;
  CrashListener crash_listener_;
};

}  // namespace rhodos::file
