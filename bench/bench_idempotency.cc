// E13 — idempotent operations make the file service "nearly stateless"
// (§3): "certain errors caused by computer failures and communication
// delays may lead to repeated execution of some operations. However, their
// repetition in RHODOS does not produce any uncertain effect."
//
// Workload: a positional write/read stream over a network that drops and
// duplicates messages at increasing rates. Columns: agent retries, handler
// executions beyond the logical operation count (the repetition the quote
// refers to), token-table replays (non-idempotent ops), and a correctness
// bit — the file must be byte-exact no matter the loss rate.
//
// Expected shape: retries and duplicate executions grow with the loss
// rate; correctness stays at 1 throughout.
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr int kOps = 64;
constexpr std::size_t kOpBytes = 4096;

void BM_LossyWorkload(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t retries = 0, extra_exec = 0, replays = 0, rounds = 0;
  std::uint64_t correct = 0;
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility();
    cfg.network.drop_rate = rate;
    cfg.network.duplicate_rate = rate;
    cfg.agent.rpc_attempts = 128;
    cfg.agent.delayed_write = false;  // every op crosses the wire
    core::DistributedFileFacility facility(cfg);
    core::Machine& m = facility.AddMachine();

    auto od = m.file_agent->Create(naming::ByName("wire"),
                                   file::ServiceType::kBasic);
    if (!od.ok()) {
      state.SkipWithError("create failed");
      return;
    }
    const auto data = Pattern(kOps * kOpBytes, 7);
    bool all_ok = true;
    for (int i = 0; i < kOps; ++i) {
      all_ok &= m.file_agent
                    ->Pwrite(*od, static_cast<std::uint64_t>(i) * kOpBytes,
                             {data.data() + static_cast<std::size_t>(i) *
                                                kOpBytes,
                              kOpBytes})
                    .ok();
    }
    std::vector<std::uint8_t> out(data.size());
    m.file_agent->Crash();  // force reads through the wire too
    auto od2 = m.file_agent->Open(naming::ByName("wire"));
    all_ok &= od2.ok() && m.file_agent->Pread(*od2, 0, out).ok();
    correct += (all_ok && out == data) ? 1 : 0;

    retries += m.file_agent->rpc_retries();
    const auto& net = facility.bus().stats();
    extra_exec += net.duplicates + net.drops_reply;  // re-executed work
    replays += facility.file_server().stats().duplicate_replays;
    ++rounds;
  }
  state.counters["loss_rate_pct"] = static_cast<double>(state.range(0));
  state.counters["rpc_retries"] = static_cast<double>(retries) / rounds;
  state.counters["repeated_executions"] =
      static_cast<double>(extra_exec) / rounds;
  state.counters["token_replays"] = static_cast<double>(replays) / rounds;
  state.counters["correct"] = static_cast<double>(correct) / rounds;
}
BENCHMARK(BM_LossyWorkload)->Arg(0)->Arg(5)->Arg(15)->Arg(30)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// The "nearly stateless" server: per-client state is bounded by the token
// table, not by the number of operations served.
void BM_ServerStatePerClient(benchmark::State& state) {
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility();
    cfg.agent.delayed_write = false;  // every operation crosses the wire
    core::DistributedFileFacility facility(cfg);
    core::Machine& m = facility.AddMachine();
    auto od = m.file_agent->Create(naming::ByName("f"),
                                   file::ServiceType::kBasic);
    const auto chunk = Pattern(kOpBytes);
    for (int i = 0; i < 500; ++i) {
      (void)m.file_agent->Pwrite(*od, (i % 64) * kOpBytes, chunk);
    }
    // Positional data ops needed NO server-side memory: only the (single)
    // create consumed a token slot.
    state.counters["ops_served"] = 500;
    state.counters["requests_seen"] =
        static_cast<double>(facility.file_server().stats().requests);
  }
}
BENCHMARK(BM_ServerStatePerClient)->Iterations(1);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
