// E20 — what the quorum buys: write latency pinned to the W-th replica
// (not the slowest), the price of serving through faults, and how fast
// anti-entropy makes a battered group whole.
//
//  * BM_QuorumWriteSlowReplica — a 3-replica group where one replica's
//    disk is 8x slower (per_disk_geometry). W=2 must commit at the speed
//    of the two fast replicas; W=3 is held hostage by the slow one. The
//    gap is the headline number of the quorum rewrite: before it, EVERY
//    write was a write-all and paid the W=3 column.
//  * BM_DegradedServing — one replica disk crashed: reads fail over,
//    writes commit at W=2 with hints queued. Columns: simulated ms for
//    the stream plus the degraded/hint counters that measure the detour.
//  * BM_TimeToConsistency — crash a replica disk, write versions past it,
//    bring it back, and count anti-entropy ticks (and simulated repair
//    time) until AllCurrent(), for N in {2, 3, 5}.
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr std::size_t kRegion = 4096;
constexpr int kOps = 64;

void BM_QuorumWriteSlowReplica(benchmark::State& state) {
  const std::uint32_t w = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(/*disks=*/3,
                                               /*fragments=*/16 * 1024);
    // Disk 2 is the straggler: 8x the seek settle and rotation.
    sim::DiskGeometry slow = cfg.geometry;
    slow.seek_base *= 8;
    slow.rotational_latency *= 8;
    cfg.per_disk_geometry = {cfg.geometry, cfg.geometry, slow};
    core::DistributedFileFacility f(cfg);
    auto& repl = f.replication();
    auto g = repl.CreateReplicated(file::ServiceType::kTransaction, 3,
                                   kRegion, replication::GroupPolicy{w, 1});
    if (!g.ok()) {
      state.SkipWithError("group create failed");
      return;
    }
    const auto data = Pattern(kRegion, 3);
    (void)repl.Write(*g, 0, data);  // warm allocation

    const SimTime start = f.clock().Now();
    for (int i = 0; i < kOps; ++i) {
      if (!repl.Write(*g, 0, data).ok()) {
        state.SkipWithError("quorum write failed on a healthy group");
        return;
      }
    }
    const SimTime elapsed = f.clock().Now() - start;
    state.counters["sim_ms"] = SimMillis(elapsed);
    state.counters["sim_ms_per_write"] = SimMillis(elapsed) / kOps;
    // All replicas still took the bytes — the quorum trims the *wait*,
    // not the redundancy.
    auto all = repl.AllCurrent(*g);
    state.counters["all_current"] = (all.ok() && *all) ? 1.0 : 0.0;
  }
}
BENCHMARK(BM_QuorumWriteSlowReplica)
    ->Arg(2)  // commit at the two fast replicas' speed
    ->Arg(3)  // write-all: the slow disk sets the pace
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_DegradedServing(benchmark::State& state) {
  const bool degraded = state.range(0) != 0;
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(/*disks=*/3,
                                               /*fragments=*/16 * 1024);
    core::DistributedFileFacility f(cfg);
    auto& repl = f.replication();
    auto g = repl.CreateReplicated(file::ServiceType::kTransaction, 3,
                                   kRegion,
                                   replication::GroupPolicy{2, 2});
    if (!g.ok()) {
      state.SkipWithError("group create failed");
      return;
    }
    const auto data = Pattern(kRegion, 3);
    (void)repl.Write(*g, 0, data);

    if (degraded) {
      const auto reps = repl.Replicas(*g);
      (void)f.CrashDisk((*reps)[0].disk);  // the read path's first choice
      f.recovery().Tick();
    }

    const SimTime start = f.clock().Now();
    std::vector<std::uint8_t> out(kRegion);
    std::uint64_t failures = 0;
    for (int i = 0; i < kOps; ++i) {
      if (i % 2 == 0) {
        failures += repl.Write(*g, 0, data).ok() ? 0 : 1;
      } else {
        failures += repl.Read(*g, 0, out).ok() ? 0 : 1;
      }
    }
    const SimTime elapsed = f.clock().Now() - start;
    state.counters["sim_ms"] = SimMillis(elapsed);
    state.counters["op_failures"] = static_cast<double>(failures);
    state.counters["degraded_writes"] =
        static_cast<double>(repl.stats().degraded_writes);
    state.counters["hints_queued"] =
        static_cast<double>(repl.stats().hints_queued);
    state.counters["failovers"] = static_cast<double>(repl.stats().failovers);
  }
}
BENCHMARK(BM_DegradedServing)
    ->Arg(0)  // healthy
    ->Arg(1)  // one replica disk down, quorum still met
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

constexpr int kOutageWrites = 8;

void BM_TimeToConsistency(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(/*disks=*/n,
                                               /*fragments=*/16 * 1024);
    core::DistributedFileFacility f(cfg);
    auto& repl = f.replication();
    auto g = repl.CreateReplicated(file::ServiceType::kTransaction, n,
                                   kRegion);
    if (!g.ok()) {
      state.SkipWithError("group create failed");
      return;
    }
    (void)repl.Write(*g, 0, Pattern(kRegion, 3));

    const DiskId victim = (*repl.Replicas(*g))[0].disk;
    (void)f.CrashDisk(victim);
    f.recovery().Tick();
    for (int i = 0; i < kOutageWrites; ++i) {
      (void)repl.Write(*g, 0, Pattern(kRegion, static_cast<std::uint8_t>(i)));
    }

    (void)f.RecoverDisk(victim);
    const SimTime start = f.clock().Now();
    int ticks = 0;
    bool current = false;
    while (!current && ticks < 32) {
      f.recovery().Tick();
      ++ticks;
      auto all = repl.AllCurrent(*g);
      current = all.ok() && *all;
    }
    if (!current) {
      state.SkipWithError("group never converged");
      return;
    }
    state.counters["anti_entropy_ticks"] = static_cast<double>(ticks);
    state.counters["repair_sim_ms"] = SimMillis(f.clock().Now() - start);
    state.counters["hints_replayed"] =
        static_cast<double>(repl.stats().hints_replayed);
    state.counters["repairs"] = static_cast<double>(repl.stats().repairs);
  }
}
BENCHMARK(BM_TimeToConsistency)
    ->Arg(2)
    ->Arg(3)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
