// E11 — stable storage (§2.1, §4): "provision of stable storage ensures
// that all the important data structures used for file management ... are
// recoverable", with put_block's caller choosing stable-only vs
// original+stable and synchronous vs asynchronous completion.
//
// Part 1 (cost): per-write simulated latency of the four stable-mode /
// sync combinations. Expected shape: none < async-stable ≈ none (deferred)
// < sync original+stable ≈ 2x a plain write.
//
// Part 2 (recoverability): commit transactions while injecting a disk
// crash after the k-th write reference, for every k the commit performs;
// after recovery the file must hold either the OLD or the NEW value —
// never a torn mixture — and committed-then-crashed updates must be
// redone. Reported as a success rate over all injection points.
#include "bench/bench_util.h"

#include "disk/disk_server.h"

namespace rhodos::bench {
namespace {

// --- Part 1: write-mode cost ---------------------------------------------------

void RunPutMode(benchmark::State& state, disk::StableMode mode,
                disk::WriteSync sync) {
  disk::DiskServerConfig cfg;
  cfg.geometry.total_fragments = 64 * 1024;
  SimClock clock;
  disk::DiskServer server(DiskId{0}, cfg, &clock);
  const FragmentIndex home = *server.AllocateBlocks(1);
  const auto data = Pattern(kBlockSize);
  SimTime total = 0;
  std::uint64_t writes = 0;
  for (auto _ : state) {
    const SimTime t0 = clock.Now();
    (void)server.PutBlock(home, kFragmentsPerBlock, data, mode, sync);
    total += clock.Now() - t0;
    ++writes;
    if (server.PendingStableWrites() > 128) {
      (void)server.DrainStableWrites();
    }
  }
  state.counters["sim_us_per_write"] =
      static_cast<double>(total) / kSimMicrosecond / writes;
  state.counters["stable_backlog"] =
      static_cast<double>(server.PendingStableWrites());
}

void BM_Put_OriginalOnly(benchmark::State& state) {
  RunPutMode(state, disk::StableMode::kNone, disk::WriteSync::kSynchronous);
}
void BM_Put_StableOnly_Sync(benchmark::State& state) {
  RunPutMode(state, disk::StableMode::kStableOnly,
             disk::WriteSync::kSynchronous);
}
void BM_Put_OriginalAndStable_Sync(benchmark::State& state) {
  RunPutMode(state, disk::StableMode::kOriginalAndStable,
             disk::WriteSync::kSynchronous);
}
void BM_Put_OriginalAndStable_Async(benchmark::State& state) {
  RunPutMode(state, disk::StableMode::kOriginalAndStable,
             disk::WriteSync::kAsynchronous);
}
BENCHMARK(BM_Put_OriginalOnly)->Iterations(200);
BENCHMARK(BM_Put_StableOnly_Sync)->Iterations(200);
BENCHMARK(BM_Put_OriginalAndStable_Sync)->Iterations(200);
BENCHMARK(BM_Put_OriginalAndStable_Async)->Iterations(200);

// --- Part 2: atomicity under crash injection -------------------------------------

void BM_CommitCrashSweep(benchmark::State& state) {
  std::uint64_t atomic_outcomes = 0, torn_outcomes = 0, points = 0;
  std::uint64_t redone = 0;
  for (auto _ : state) {
    // Find how many write references one commit performs, then inject a
    // crash at every index in turn.
    for (std::int64_t crash_at = 0; crash_at < 24; ++crash_at) {
      core::FacilityConfig cfg = DefaultFacility();
      core::DistributedFileFacility facility(cfg);
      auto& txns = facility.transactions();
      auto t0 = txns.Begin(ProcessId{1});
      auto file = txns.TCreate(*t0, file::LockLevel::kPage,
                               4 * kBlockSize);
      const auto old_value = Pattern(kBlockSize, 0xA0);
      (void)txns.TWrite(*t0, *file, 0, old_value);
      (void)txns.End(*t0);
      (void)facility.files().FlushAll();

      // Arm the crash and run the update transaction.
      auto server = facility.disks().Get(DiskId{0});
      (*server)->SetFaultPlan(
          sim::DiskFaultPlan{.media_error_rate = 0,
                             .crash_after_writes = crash_at});
      const auto new_value = Pattern(kBlockSize, 0xB1);
      auto t1 = txns.Begin(ProcessId{1});
      (void)txns.TWrite(*t1, *file, 0, new_value);
      (void)txns.End(*t1);  // may fail at any internal write

      // Recover the whole system and audit the committed state.
      facility.CrashServers();
      (void)facility.RecoverServers();
      std::vector<std::uint8_t> got(kBlockSize);
      auto n = facility.files().Read(*file, 0, got);
      if (n.ok() && (got == old_value || got == new_value)) {
        ++atomic_outcomes;
      } else {
        ++torn_outcomes;
      }
      redone += facility.transactions().stats().recovered_redone;
      ++points;
    }
  }
  state.counters["injection_points"] = static_cast<double>(points);
  state.counters["atomic_pct"] =
      100.0 * static_cast<double>(atomic_outcomes) /
      static_cast<double>(points);
  state.counters["torn"] = static_cast<double>(torn_outcomes);
  state.counters["txns_redone_at_recovery"] = static_cast<double>(redone);
}
BENCHMARK(BM_CommitCrashSweep)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Without stable storage the vital structures are NOT recoverable when the
// main copy tears: the ablation row.
void BM_IndexTableLoss_NoStableFallback(benchmark::State& state) {
  std::uint64_t survived_with = 0, survived_without = 0, rounds = 0;
  for (auto _ : state) {
    core::DistributedFileFacility facility(DefaultFacility());
    auto file = facility.files().Create(file::ServiceType::kBasic, 0);
    (void)facility.files().Write(*file, 0, Pattern(1000));
    (void)facility.files().FlushAll();
    facility.files().Crash();
    // Tear the MAIN copy of the index table; cycle the disk server so the
    // damage is not masked by its track cache.
    auto server = facility.disks().Get(file::FileDisk(*file));
    std::vector<std::uint8_t> junk(kFragmentSize, 0xFF);
    (*server)->main_device().RawOverwrite(file::FileFitFragment(*file),
                                          junk);
    (*server)->Crash();
    (void)(*server)->Recover();
    std::vector<std::uint8_t> out(1000);
    survived_with += facility.files().Read(*file, 0, out).ok() ? 1 : 0;
    // Now also tear the stable mirror: unrecoverable.
    (*server)->stable_device().RawOverwrite(file::FileFitFragment(*file),
                                            junk);
    (*server)->Crash();
    (void)(*server)->Recover();
    facility.files().Crash();
    survived_without += facility.files().Read(*file, 0, out).ok() ? 1 : 0;
    ++rounds;
  }
  state.counters["recovered_with_stable_pct"] =
      100.0 * static_cast<double>(survived_with) / rounds;
  state.counters["recovered_without_stable_pct"] =
      100.0 * static_cast<double>(survived_without) / rounds;
}
BENCHMARK(BM_IndexTableLoss_NoStableFallback)->Iterations(3);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
