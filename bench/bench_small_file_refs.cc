// E1 — "for files up to half a megabyte, the maximum number of disk
// references is two: one for the file index table and the other for file
// data" (§7), enabled by 64 direct descriptors and by creating the index
// table contiguous with the first data block.
//
// Sweep: cold-read whole files from 4 KiB to 4 MiB and report the number of
// disk references, seeks and simulated latency. Expected shape: refs <= 2
// up to 512 KiB; beyond the direct reach, a handful more (indirect blocks);
// never O(blocks).
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

void BM_ColdWholeFileRead(benchmark::State& state) {
  const auto file_bytes = static_cast<std::uint64_t>(state.range(0));
  core::DistributedFileFacility facility(
      DefaultFacility(1, 128 * 1024));  // 256 MiB disk
  auto file = facility.files().Create(file::ServiceType::kBasic,
                                      file_bytes);
  if (!file.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  (void)facility.files().Write(*file, 0, Pattern(file_bytes));
  (void)facility.files().FlushAll();

  std::vector<std::uint8_t> out(file_bytes);
  std::uint64_t refs = 0, seeks = 0, reads = 0;
  SimTime sim_total = 0;
  for (auto _ : state) {
    ColdCaches(facility);
    facility.disks().ResetStats();
    const SimTime t0 = facility.clock().Now();
    auto n = facility.files().Read(*file, 0, out);
    if (!n.ok() || *n != file_bytes) {
      state.SkipWithError("read failed");
      return;
    }
    sim_total += facility.clock().Now() - t0;
    refs += TotalReadRefs(facility);
    seeks += TotalSeekTracks(facility);
    ++reads;
  }
  state.counters["disk_refs"] = static_cast<double>(refs) / reads;
  state.counters["seek_tracks"] = static_cast<double>(seeks) / reads;
  state.counters["sim_ms"] =
      SimMillis(sim_total) / static_cast<double>(reads);
  state.counters["within_paper_bound"] =
      (file_bytes <= 512 * 1024 && refs / reads <= 2) ? 1 : 0;
  state.SetBytesProcessed(
      static_cast<std::int64_t>(file_bytes * reads));
}
BENCHMARK(BM_ColdWholeFileRead)
    ->Arg(4 * 1024)
    ->Arg(64 * 1024)
    ->Arg(256 * 1024)
    ->Arg(512 * 1024)      // the paper's boundary
    ->Arg(1024 * 1024)
    ->Arg(4 * 1024 * 1024)
    ->Iterations(3);

// The layout trick behind the bound: the table and the first data block are
// allocated contiguously, so reading table+first block is ONE reference.
void BM_TableAndFirstBlockTogether(benchmark::State& state) {
  core::DistributedFileFacility facility(DefaultFacility());
  auto file = facility.files().Create(file::ServiceType::kBasic,
                                      kBlockSize);
  (void)facility.files().Write(*file, 0, Pattern(kBlockSize));
  (void)facility.files().FlushAll();
  std::vector<std::uint8_t> out(kBlockSize);
  std::uint64_t refs = 0, reads = 0;
  for (auto _ : state) {
    ColdCaches(facility);
    facility.disks().ResetStats();
    (void)facility.files().Read(*file, 0, out);
    refs += TotalReadRefs(facility);
    ++reads;
  }
  // Track readahead sweeps the first data block in under the index table's
  // head pass: a one-block file costs ONE reference cold.
  state.counters["disk_refs"] = static_cast<double>(refs) / reads;
}
BENCHMARK(BM_TableAndFirstBlockTogether)->Iterations(5);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
