// E12 — the transaction service is optional (§2.1, §5, §6): the basic file
// service is "a platform with bare minimum overheads to suit applications
// which manage their own concurrency control and crash recovery", while
// transaction semantics buy atomicity at the cost of locking, intention
// logging, and write-through durability.
//
// Workload: the same 100-update stream against one 16-block file, three
// ways — basic ops, one-txn-per-update, one txn batching all updates.
// Columns: simulated time per update, disk write references, log traffic.
//
// Expected shape: basic is cheapest (delayed writes coalesce); per-update
// transactions pay the full commit machinery every time; a batched
// transaction amortizes logging and sits in between.
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr int kUpdates = 100;
constexpr std::uint64_t kFileBlocks = 16;

struct RunResult {
  SimTime sim_time = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t log_bytes = 0;
};

template <typename Fn>
RunResult Measure(core::DistributedFileFacility& facility, Fn&& body) {
  facility.ResetStats();
  const std::uint64_t log0 =
      facility.transactions().log().stats().bytes_logged;
  const SimTime t0 = facility.clock().Now();
  body();
  RunResult r;
  r.sim_time = facility.clock().Now() - t0;
  r.disk_writes = TotalWriteRefs(facility);
  r.log_bytes =
      facility.transactions().log().stats().bytes_logged - log0;
  return r;
}

void Report(benchmark::State& state, const RunResult& r) {
  state.counters["sim_us_per_update"] =
      static_cast<double>(r.sim_time) / kSimMicrosecond / kUpdates;
  state.counters["disk_write_refs"] = static_cast<double>(r.disk_writes);
  state.counters["log_KiB"] = static_cast<double>(r.log_bytes) / 1024.0;
}

void BM_BasicFileService(benchmark::State& state) {
  for (auto _ : state) {
    core::DistributedFileFacility facility(DefaultFacility());
    auto file = facility.files().Create(file::ServiceType::kBasic,
                                        kFileBlocks * kBlockSize);
    (void)facility.files().Write(*file, 0,
                                 Pattern(kFileBlocks * kBlockSize));
    (void)facility.files().FlushAll();
    Rng rng(3);
    const RunResult r = Measure(facility, [&] {
      for (int i = 0; i < kUpdates; ++i) {
        const std::uint64_t off = rng.Below(kFileBlocks * kBlockSize - 128);
        (void)facility.files().Write(
            *file, off, Pattern(128, static_cast<std::uint8_t>(i)));
      }
      (void)facility.files().Flush(*file);
    });
    Report(state, r);
  }
}
BENCHMARK(BM_BasicFileService)->Iterations(3);

void BM_TxnPerUpdate(benchmark::State& state) {
  for (auto _ : state) {
    core::DistributedFileFacility facility(DefaultFacility());
    auto& txns = facility.transactions();
    auto t0 = txns.Begin(ProcessId{1});
    auto file = txns.TCreate(*t0, file::LockLevel::kPage,
                             kFileBlocks * kBlockSize);
    (void)txns.TWrite(*t0, *file, 0, Pattern(kFileBlocks * kBlockSize));
    (void)txns.End(*t0);
    Rng rng(3);
    const RunResult r = Measure(facility, [&] {
      for (int i = 0; i < kUpdates; ++i) {
        const std::uint64_t off = rng.Below(kFileBlocks * kBlockSize - 128);
        auto t = txns.Begin(ProcessId{1});
        (void)txns.TWrite(*t, *file, off,
                          Pattern(128, static_cast<std::uint8_t>(i)));
        (void)txns.End(*t);
      }
    });
    Report(state, r);
  }
}
BENCHMARK(BM_TxnPerUpdate)->Iterations(3);

void BM_OneTxnBatchingAllUpdates(benchmark::State& state) {
  for (auto _ : state) {
    core::DistributedFileFacility facility(DefaultFacility());
    auto& txns = facility.transactions();
    auto t0 = txns.Begin(ProcessId{1});
    auto file = txns.TCreate(*t0, file::LockLevel::kPage,
                             kFileBlocks * kBlockSize);
    (void)txns.TWrite(*t0, *file, 0, Pattern(kFileBlocks * kBlockSize));
    (void)txns.End(*t0);
    Rng rng(3);
    const RunResult r = Measure(facility, [&] {
      auto t = txns.Begin(ProcessId{1});
      for (int i = 0; i < kUpdates; ++i) {
        const std::uint64_t off = rng.Below(kFileBlocks * kBlockSize - 128);
        (void)txns.TWrite(*t, *file, off,
                          Pattern(128, static_cast<std::uint8_t>(i)));
      }
      (void)txns.End(*t);
    });
    Report(state, r);
  }
}
BENCHMARK(BM_OneTxnBatchingAllUpdates)->Iterations(3);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
