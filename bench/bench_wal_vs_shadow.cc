// E7 — WAL versus shadow page at commit (§6.7), the paper's central
// recoverability trade-off:
//   * "the shadow page technique requires lesser I/O overhead than the wal
//     technique, because there is no need to copy blocks in the commit
//     phase";
//   * but "this technique destroys the contiguity of data blocks", while
//     "the use of the wal technique retains the performance gain achieved
//     due to the contiguous allocation";
//   * RHODOS therefore picks WAL when the blocks are contiguous and shadow
//     paging when they are not.
//
// Workload: N single-page update transactions against an initially
// contiguous 64-block file, under WAL-only, shadow-only, and the paper's
// hybrid rule. Columns: commit disk writes, log bytes, post-run contiguity
// index, and the simulated time of a full sequential re-read afterwards.
//
// Expected shape: shadow-only logs the least but contiguity collapses and
// the re-read slows down by an order of magnitude; WAL-only logs every
// page image but the re-read stays at ~2 references; the hybrid behaves
// like WAL here (the file starts contiguous and WAL keeps it so).
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr std::uint64_t kFileBlocks = 64;
constexpr int kTransactions = 100;

void RunTechnique(benchmark::State& state,
                  txn::TxnServiceConfig::TechniqueOverride technique) {
  std::uint64_t commit_writes = 0, log_bytes = 0, rounds = 0;
  double contiguity = 1.0;
  SimTime reread_time = 0;
  std::uint64_t reread_refs = 0;

  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(1, 128 * 1024);
    cfg.txn.technique = technique;
    core::DistributedFileFacility facility(cfg);
    auto& txns = facility.transactions();

    // A contiguous transaction file.
    auto t0 = txns.Begin(ProcessId{1});
    auto file = txns.TCreate(*t0, file::LockLevel::kPage,
                             kFileBlocks * kBlockSize);
    (void)txns.TWrite(*t0, *file, 0, Pattern(kFileBlocks * kBlockSize));
    (void)txns.End(*t0);

    // N random single-page updates, each its own transaction.
    Rng rng(42);
    facility.ResetStats();
    const std::uint64_t log0 = txns.log().stats().bytes_logged;
    for (int i = 0; i < kTransactions; ++i) {
      auto t = txns.Begin(ProcessId{1});
      const std::uint64_t page = rng.Below(kFileBlocks);
      (void)txns.TWrite(*t, *file, page * kBlockSize,
                        Pattern(kBlockSize, static_cast<std::uint8_t>(i)));
      (void)txns.End(*t);
    }
    commit_writes += TotalWriteRefs(facility);
    log_bytes += txns.log().stats().bytes_logged - log0;
    contiguity = *facility.files().ContiguityIndex(*file);

    // The after-effect: a cold sequential re-read of the whole file.
    ColdCaches(facility);
    facility.disks().ResetStats();
    std::vector<std::uint8_t> out(kFileBlocks * kBlockSize);
    const SimTime r0 = facility.clock().Now();
    (void)facility.files().Read(*file, 0, out);
    reread_time += facility.clock().Now() - r0;
    reread_refs += TotalReadRefs(facility);
    ++rounds;
  }
  state.counters["commit_disk_write_refs"] =
      static_cast<double>(commit_writes) / rounds;
  state.counters["log_KiB"] =
      static_cast<double>(log_bytes) / rounds / 1024.0;
  state.counters["contiguity_after"] = contiguity;
  state.counters["reread_sim_ms"] = SimMillis(reread_time) / rounds;
  state.counters["reread_disk_refs"] =
      static_cast<double>(reread_refs) / rounds;
}

void BM_WalAlways(benchmark::State& state) {
  RunTechnique(state, txn::TxnServiceConfig::TechniqueOverride::kWalAlways);
}
void BM_ShadowAlways(benchmark::State& state) {
  RunTechnique(state,
               txn::TxnServiceConfig::TechniqueOverride::kShadowAlways);
}
void BM_RhodosHybrid(benchmark::State& state) {
  RunTechnique(state, txn::TxnServiceConfig::TechniqueOverride::kAuto);
}
BENCHMARK(BM_WalAlways)->Iterations(2);
BENCHMARK(BM_ShadowAlways)->Iterations(2);
BENCHMARK(BM_RhodosHybrid)->Iterations(2);

// The hybrid rule on an ALREADY-fragmented file: RHODOS switches to shadow
// paging, avoiding WAL's double write of page images.
void BM_RhodosHybrid_FragmentedFile(benchmark::State& state) {
  std::uint64_t shadow_commits = 0, wal_commits = 0, rounds = 0;
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(1, 128 * 1024);
    core::DistributedFileFacility facility(cfg);
    auto& txns = facility.transactions();
    auto t0 = txns.Begin(ProcessId{1});
    auto file = txns.TCreate(*t0, file::LockLevel::kPage,
                             16 * kBlockSize);
    (void)txns.TWrite(*t0, *file, 0, Pattern(16 * kBlockSize));
    (void)txns.End(*t0);
    // Fragment it.
    auto shadow = facility.files().AllocateShadowBlock(*file);
    auto server = facility.disks().Get(shadow->disk);
    (void)(*server)->PutBlock(shadow->first, kFragmentsPerBlock,
                              Pattern(kBlockSize));
    (void)facility.files().ReplaceBlock(*file, 7, shadow->disk,
                                        shadow->first);
    txns.ResetStats();
    for (int i = 0; i < 10; ++i) {
      auto t = txns.Begin(ProcessId{1});
      (void)txns.TWrite(*t, *file, (i % 16) * kBlockSize,
                        Pattern(kBlockSize, static_cast<std::uint8_t>(i)));
      (void)txns.End(*t);
    }
    shadow_commits += txns.stats().shadow_commits;
    wal_commits += txns.stats().wal_commits;
    ++rounds;
  }
  state.counters["shadow_commits"] =
      static_cast<double>(shadow_commits) / rounds;
  state.counters["wal_commits"] = static_cast<double>(wal_commits) / rounds;
}
BENCHMARK(BM_RhodosHybrid_FragmentedFile)->Iterations(2);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
