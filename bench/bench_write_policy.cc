// E6 — modification policies (§5): "we decided to implement the
// delayed-write policy to save modifications made to data cached by the
// file agent. However ... the delayed-write together with write-through
// policies are adapted to save modifications made to data cached by the
// file service."
//
// Workload: a burst of small sequential writes followed by a re-read.
// Columns: messages to the file service, disk write references, simulated
// time. Expected shape: the agent's delayed write collapses many small
// client writes into a few block-sized messages at close; at the file
// service, delayed write collapses disk traffic for basic files while
// write-through (the transaction-file policy) pays per write for
// durability.
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr int kWrites = 256;
constexpr std::size_t kWriteBytes = 512;  // small client writes

void RunAgentPolicy(benchmark::State& state, bool delayed) {
  core::FacilityConfig cfg = DefaultFacility();
  cfg.agent.delayed_write = delayed;
  std::uint64_t messages = 0, disk_writes = 0, rounds = 0;
  SimTime sim_total = 0;
  for (auto _ : state) {
    core::DistributedFileFacility facility(cfg);
    core::Machine& m = facility.AddMachine();
    auto od = m.file_agent->Create(naming::ByName("burst"),
                                   file::ServiceType::kBasic);
    const auto chunk = Pattern(kWriteBytes);
    facility.ResetStats();
    const SimTime t0 = facility.clock().Now();
    for (int i = 0; i < kWrites; ++i) {
      (void)m.file_agent->Write(*od, chunk);
    }
    (void)m.file_agent->Close(*od);  // delayed data reaches the server here
    sim_total += facility.clock().Now() - t0;
    messages += facility.bus().stats().calls;
    disk_writes += TotalWriteRefs(facility);
    ++rounds;
  }
  state.counters["messages"] = static_cast<double>(messages) / rounds;
  state.counters["disk_write_refs"] =
      static_cast<double>(disk_writes) / rounds;
  state.counters["sim_ms"] = SimMillis(sim_total) / rounds;
  state.counters["client_writes"] = kWrites;
}

void BM_AgentDelayedWrite(benchmark::State& state) {
  RunAgentPolicy(state, true);
}
void BM_AgentWriteThrough(benchmark::State& state) {
  RunAgentPolicy(state, false);
}
BENCHMARK(BM_AgentDelayedWrite)->Iterations(3);
BENCHMARK(BM_AgentWriteThrough)->Iterations(3);

// File-service policy: the same server-side burst against a basic file
// (delayed write) versus a transaction-typed file (write-through).
void RunServicePolicy(benchmark::State& state, file::ServiceType type) {
  std::uint64_t disk_writes = 0, rounds = 0;
  SimTime sim_total = 0;
  for (auto _ : state) {
    core::DistributedFileFacility facility(DefaultFacility());
    auto file = facility.files().Create(type, 64 * kBlockSize);
    const auto chunk = Pattern(kWriteBytes);
    facility.ResetStats();
    const SimTime t0 = facility.clock().Now();
    for (int i = 0; i < kWrites; ++i) {
      (void)facility.files().Write(*file, i * kWriteBytes, chunk);
    }
    (void)facility.files().Flush(*file);
    sim_total += facility.clock().Now() - t0;
    disk_writes += TotalWriteRefs(facility);
    ++rounds;
  }
  state.counters["disk_write_refs"] =
      static_cast<double>(disk_writes) / rounds;
  state.counters["sim_ms"] = SimMillis(sim_total) / rounds;
}

void BM_ServiceDelayedWrite_BasicFile(benchmark::State& state) {
  RunServicePolicy(state, file::ServiceType::kBasic);
}
void BM_ServiceWriteThrough_TxnFile(benchmark::State& state) {
  RunServicePolicy(state, file::ServiceType::kTransaction);
}
BENCHMARK(BM_ServiceDelayedWrite_BasicFile)->Iterations(3);
BENCHMARK(BM_ServiceWriteThrough_TxnFile)->Iterations(3);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
