// E4 — the 64x64 free-space run array (§4): "the objective of this array is
// to check quickly whether a requested number of contiguous fragments or
// blocks are available or not" — versus scanning the bitmap.
//
// This is a genuine CPU microbenchmark: wall-clock allocation latency of
// (a) the run-array-backed allocator versus (b) a pure bitmap scan, across
// disk fullness levels, plus the O(rows) availability probe versus an
// O(disk) scan. Expected shape: the run array stays flat as the disk grows
// and fills; the bitmap scan degrades with both.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "disk/disk_server.h"

namespace rhodos::bench {
namespace {

using disk::Bitmap;
using disk::DiskServer;
using disk::FreeSpaceArray;

disk::DiskServerConfig ServerConfig(std::uint64_t fragments) {
  disk::DiskServerConfig c;
  c.geometry.total_fragments = fragments;
  return c;
}

// Fills the disk to `percent` with randomly sized allocations, freeing a
// random half so the free space is realistically fragmented.
void Churn(DiskServer& server, int percent, Rng& rng) {
  const std::uint64_t target =
      server.TotalFragmentCount() * static_cast<std::uint64_t>(percent) /
      100;
  std::vector<std::pair<FragmentIndex, std::uint32_t>> live;
  while (server.TotalFragmentCount() - server.FreeFragmentCount() < target) {
    const auto want = static_cast<std::uint32_t>(rng.Between(1, 16));
    auto got = server.AllocateFragments(want);
    if (!got.ok()) break;
    live.emplace_back(*got, want);
  }
  std::shuffle(live.begin(), live.end(), rng);
  for (std::size_t i = 0; i < live.size() / 3; ++i) {
    (void)server.FreeFragments(live[i].first, live[i].second);
  }
}

void BM_AllocateViaRunArray(benchmark::State& state) {
  SimClock clock;
  DiskServer server(DiskId{0}, ServerConfig(64 * 1024), &clock);
  Rng rng(7);
  Churn(server, static_cast<int>(state.range(0)), rng);
  std::vector<FragmentIndex> allocated;
  for (auto _ : state) {
    auto got = server.AllocateFragments(4);
    if (got.ok()) {
      allocated.push_back(*got);
      if (allocated.size() >= 64) {
        // Recycle so the benchmark can run indefinitely at fixed fullness.
        state.PauseTiming();
        for (FragmentIndex f : allocated) (void)server.FreeFragments(f, 4);
        allocated.clear();
        state.ResumeTiming();
      }
    }
  }
  state.counters["array_hit_rate"] =
      server.free_space_stats().array_hits == 0
          ? 0.0
          : static_cast<double>(server.free_space_stats().array_hits) /
                (server.free_space_stats().array_hits +
                 server.free_space_stats().array_misses);
  state.counters["rebuilds"] =
      static_cast<double>(server.free_space_stats().rebuilds);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocateViaRunArray)->Arg(10)->Arg(50)->Arg(90);

void BM_AllocateViaBitmapScan(benchmark::State& state) {
  // The baseline the paper improves on: find every run by scanning.
  SimClock clock;
  DiskServer server(DiskId{0}, ServerConfig(64 * 1024), &clock);
  Rng rng(7);
  Churn(server, static_cast<int>(state.range(0)), rng);
  // Mirror the occupancy into a raw bitmap we scan directly.
  Bitmap bitmap(server.TotalFragmentCount());
  for (FragmentIndex f = 0; f < server.TotalFragmentCount(); ++f) {
    if (server.IsFragmentAllocated(f)) bitmap.AllocateRange(f, 1);
  }
  std::vector<FragmentIndex> allocated;
  for (auto _ : state) {
    auto run = bitmap.FindFreeRun(4);
    if (run.has_value()) {
      bitmap.AllocateRange(*run, 4);
      allocated.push_back(*run);
      if (allocated.size() >= 64) {
        state.PauseTiming();
        for (FragmentIndex f : allocated) bitmap.FreeRange(f, 4);
        allocated.clear();
        state.ResumeTiming();
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocateViaBitmapScan)->Arg(10)->Arg(50)->Arg(90);

void BM_AvailabilityProbe_RunArray(benchmark::State& state) {
  // "Check quickly whether a requested number of contiguous fragments or
  // blocks are available": O(64) row probe.
  SimClock clock;
  DiskServer server(DiskId{0}, ServerConfig(64 * 1024), &clock);
  Rng rng(11);
  Churn(server, 70, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.MightSatisfyContiguous(32));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AvailabilityProbe_RunArray);

void BM_AvailabilityProbe_BitmapScan(benchmark::State& state) {
  SimClock clock;
  DiskServer server(DiskId{0}, ServerConfig(64 * 1024), &clock);
  Rng rng(11);
  Churn(server, 70, rng);
  Bitmap bitmap(server.TotalFragmentCount());
  for (FragmentIndex f = 0; f < server.TotalFragmentCount(); ++f) {
    if (server.IsFragmentAllocated(f)) bitmap.AllocateRange(f, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap.FindFreeRun(32).has_value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AvailabilityProbe_BitmapScan);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
