// E17 — batched, reordered, and overlapped I/O: the three mechanisms this
// row measures together are the vectored disk interface (one elevator pass
// per submission, adjacent runs coalesced), the overlapped per-disk
// sub-batches of a striped request (sim::ParallelSection — elapsed is the
// busiest spindle, not the sum), and sequential read-ahead in the file
// service.
//
//  * BM_OverlappedStripedWrite — write a striped file through the
//    write-through path with D in {1,2,4,8} disks; the per-disk vectored
//    fan-out should make simulated elapsed time fall near 1/D.
//  * BM_SequentialReadAhead — stream a file block by block; after the
//    detector arms, almost every read is served by a prefetched cache
//    block. Columns: readahead hit rate (hits / issued), refs.
//  * BM_VectoredWriteback — dirty a scattered set of cached blocks, then
//    Flush(): the per-disk elevator turns N writebacks into a few swept
//    references. Columns: refs per dirtied block, elevator reorders.
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr std::uint64_t kFileBytes = 16ull * 1024 * 1024;

void BM_OverlappedStripedWrite(benchmark::State& state) {
  const auto disk_count = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    core::FacilityConfig cfg =
        DefaultFacility(disk_count, (64 * 1024) / disk_count);
    cfg.file.extent_blocks = 32;  // 256 KiB stripe unit
    cfg.file.extend_in_place = disk_count == 1;
    // Big enough that growth's zero-fill never evicts mid-benchmark.
    cfg.file.block_pool_capacity = 4096;
    core::DistributedFileFacility facility(cfg);

    // Transaction files write through, so every Write drives the disks.
    // No size hint: the file stripes across spindles as it grows.
    auto file = facility.files().Create(file::ServiceType::kTransaction, 0);
    if (!file.ok()) {
      state.SkipWithError("create failed");
      return;
    }
    const auto chunk = Pattern(4 * 1024 * 1024);
    const SimTime start = facility.clock().Now();
    for (std::uint64_t off = 0; off < kFileBytes; off += chunk.size()) {
      if (!facility.files().Write(*file, off, chunk).ok()) {
        state.SkipWithError("write failed");
        return;
      }
    }
    const double elapsed_ms = SimMillis(facility.clock().Now() - start);
    state.counters["sim_elapsed_ms"] = elapsed_ms;
    state.counters["throughput_MiBps"] =
        static_cast<double>(kFileBytes) / (1024 * 1024) /
        (elapsed_ms / 1000.0);
    state.counters["write_refs"] =
        static_cast<double>(TotalWriteRefs(facility));
  }
}
BENCHMARK(BM_OverlappedStripedWrite)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SequentialReadAhead(benchmark::State& state) {
  constexpr std::uint64_t kBlocks = 512;  // 4 MiB streamed block by block
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(1, 32 * 1024);
    core::DistributedFileFacility facility(cfg);
    auto file = facility.files().Create(file::ServiceType::kBasic,
                                        kBlocks * kBlockSize);
    if (!file.ok()) {
      state.SkipWithError("create failed");
      return;
    }
    (void)facility.files().Write(*file, 0, Pattern(kBlocks * kBlockSize));
    (void)facility.files().FlushAll();
    ColdCaches(facility);
    facility.disks().ResetStats();

    std::vector<std::uint8_t> out(kBlockSize);
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      if (!facility.files().Read(*file, b * kBlockSize, out).ok()) {
        state.SkipWithError("read failed");
        return;
      }
    }
    const auto& fs = facility.files().stats();
    const double issued = static_cast<double>(fs.readahead_issued);
    const double hit_rate =
        issued > 0 ? static_cast<double>(fs.readahead_hits) / issued : 0.0;
    if (hit_rate <= 0.8) {
      state.SkipWithError("sequential read-ahead hit rate fell below 80%");
      return;
    }
    state.counters["readahead_issued"] = issued;
    state.counters["readahead_hits"] =
        static_cast<double>(fs.readahead_hits);
    state.counters["readahead_wasted"] =
        static_cast<double>(fs.readahead_wasted);
    state.counters["readahead_hit_rate"] = hit_rate;
    state.counters["disk_refs"] =
        static_cast<double>(TotalReadRefs(facility));
  }
}
BENCHMARK(BM_SequentialReadAhead)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_VectoredWriteback(benchmark::State& state) {
  constexpr std::uint64_t kBlocks = 128;
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(2, 32 * 1024);
    cfg.file.extent_blocks = 16;
    cfg.file.extend_in_place = false;
    core::DistributedFileFacility facility(cfg);
    auto file = facility.files().Create(file::ServiceType::kBasic,
                                        kBlocks * kBlockSize);
    if (!file.ok()) {
      state.SkipWithError("create failed");
      return;
    }
    (void)facility.files().Write(*file, 0, Pattern(kBlocks * kBlockSize));
    (void)facility.files().FlushAll();
    facility.disks().ResetStats();

    // Dirty every block in a scattered order, then flush once: the
    // elevator sweeps them back in fragment order, coalescing neighbours.
    const auto blockful = Pattern(kBlockSize, 7);
    for (std::uint64_t i = 0; i < kBlocks; ++i) {
      const std::uint64_t b = (i * 37) % kBlocks;  // pseudo-random order
      (void)facility.files().Write(*file, b * kBlockSize, blockful);
    }
    const SimTime start = facility.clock().Now();
    if (!facility.files().Flush(*file).ok()) {
      state.SkipWithError("flush failed");
      return;
    }
    const double flush_ms = SimMillis(facility.clock().Now() - start);

    std::uint64_t reorders = 0, merged = 0;
    for (const auto& d : facility.disks().disks()) {
      reorders += d->vec_stats().elevator_reorders;
      merged += d->vec_stats().merged_runs;
    }
    state.counters["flush_sim_ms"] = flush_ms;
    state.counters["write_refs"] =
        static_cast<double>(TotalWriteRefs(facility));
    state.counters["refs_per_block"] =
        static_cast<double>(TotalWriteRefs(facility)) / kBlocks;
    state.counters["elevator_reorders"] = static_cast<double>(reorders);
    state.counters["merged_runs"] = static_cast<double>(merged);
  }
}
BENCHMARK(BM_VectoredWriteback)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
