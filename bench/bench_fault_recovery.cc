// E15 — the cost of surviving: replicated throughput in degraded mode, and
// the time to make a group whole again after a disk returns.
//
// The paper's reliability goal ("the provision to support the concept of
// file replication", §2.1) is only worth its price if the degraded system
// still performs and repair is fast. Two measurements:
//
//  * BM_DegradedThroughput — a read/write stream against a 3-replica group,
//    healthy vs. with one replica's disk crashed (reads fail over, writes
//    go degraded). Columns: simulated ms for the stream, failovers,
//    degraded writes.
//  * BM_TimeToRepair — crash a disk, write N versions while it is gone,
//    bring it back, and measure the simulated time RecoveryManager::Tick()
//    spends detecting the edge and re-syncing every stale group.
//
// Expected shape: degraded reads cost about the same (read-one), degraded
// writes slightly less disk time (one replica fewer) but lose redundancy;
// repair time scales with the bytes to copy, not with the outage length.
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr int kOps = 64;
constexpr std::size_t kRegion = 4096;

void BM_DegradedThroughput(benchmark::State& state) {
  const bool degraded = state.range(0) != 0;
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(/*disks=*/3,
                                               /*fragments=*/16 * 1024);
    core::DistributedFileFacility f(cfg);
    auto& repl = f.replication();
    auto g = repl.CreateReplicated(file::ServiceType::kTransaction, 3,
                                   kRegion);
    if (!g.ok()) {
      state.SkipWithError("group create failed");
      return;
    }
    const auto data = Pattern(kRegion, 3);
    (void)repl.Write(*g, 0, data);

    if (degraded) {
      const auto reps = repl.Replicas(*g);
      (void)f.CrashDisk((*reps)[0].disk);  // the read path's first choice
      f.recovery().Tick();
    }

    const SimTime start = f.clock().Now();
    std::vector<std::uint8_t> out(kRegion);
    std::uint64_t failures = 0;
    for (int i = 0; i < kOps; ++i) {
      if (i % 2 == 0) {
        failures += repl.Write(*g, 0, data).ok() ? 0 : 1;
      } else {
        failures += repl.Read(*g, 0, out).ok() ? 0 : 1;
      }
    }
    const SimTime elapsed = f.clock().Now() - start;

    state.counters["sim_ms"] =
        static_cast<double>(elapsed) / kSimMillisecond;
    state.counters["failovers"] =
        static_cast<double>(repl.stats().failovers);
    state.counters["degraded_writes"] =
        static_cast<double>(repl.stats().degraded_writes);
    state.counters["op_failures"] = static_cast<double>(failures);
  }
}
BENCHMARK(BM_DegradedThroughput)
    ->Arg(0)  // healthy
    ->Arg(1)  // one replica disk down
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Each replica holds 1 MiB (128 blocks), so the repair copy is big enough
// to show the extent-sized batching: a block-at-a-time rebuild would pay
// one disk reference per block, the vectored rebuild a handful per extent.
constexpr std::size_t kRepairRegion = 1024 * 1024;

void BM_TimeToRepair(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(/*disks=*/3,
                                               /*fragments=*/16 * 1024);
    core::DistributedFileFacility f(cfg);
    auto& repl = f.replication();
    std::vector<replication::GroupId> gs;
    for (int i = 0; i < groups; ++i) {
      auto g = repl.CreateReplicated(file::ServiceType::kTransaction, 3,
                                     kRepairRegion);
      if (!g.ok()) {
        state.SkipWithError("group create failed");
        return;
      }
      gs.push_back(*g);
      (void)repl.Write(*g, 0, Pattern(kRepairRegion, 3));
    }

    // Outage: every group loses its disk-1 replica and takes a write.
    (void)f.CrashDisk(DiskId{1});
    f.recovery().Tick();
    for (auto g : gs) (void)repl.Write(g, 0, Pattern(kRepairRegion, 9));

    // The disk returns; one control-loop tick detects and repairs all.
    (void)f.RecoverDisk(DiskId{1});
    const std::uint64_t write_refs_before = TotalWriteRefs(f);
    const SimTime start = f.clock().Now();
    f.recovery().Tick();
    const SimTime elapsed = f.clock().Now() - start;
    const std::uint64_t repair_disk_refs =
        TotalWriteRefs(f) - write_refs_before;

    std::uint64_t converged = 0;
    for (auto g : gs) {
      auto c = repl.Converged(g);
      converged += (c.ok() && *c) ? 1 : 0;
    }
    // The whole point of the vectored rebuild: far fewer references than
    // blocks copied. A block-at-a-time regression trips this immediately.
    const std::uint64_t blocks_copied =
        static_cast<std::uint64_t>(groups) * (kRepairRegion / kBlockSize);
    if (converged == static_cast<std::uint64_t>(groups) &&
        repair_disk_refs >= blocks_copied) {
      state.SkipWithError("repair used one reference per block — batching "
                          "regressed");
      return;
    }
    state.counters["repair_sim_ms"] =
        static_cast<double>(elapsed) / kSimMillisecond;
    state.counters["repair_disk_refs"] =
        static_cast<double>(repair_disk_refs);
    state.counters["blocks_copied"] = static_cast<double>(blocks_copied);
    state.counters["auto_repairs"] =
        static_cast<double>(f.recovery().stats().auto_repairs);
    state.counters["groups_converged"] = static_cast<double>(converged);
  }
}
BENCHMARK(BM_TimeToRepair)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
