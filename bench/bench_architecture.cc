// F1 — Figure 1: the layered architecture with caching at every level.
//
// "It provides caching at each level to avoid descending to a lower level
// to satisfy each request from the client" (§2.2). Each benchmark reads the
// same 32 KiB through the stack with a different set of layers warm, and
// reports where the request was satisfied: messages on the bus, file-
// service cache hits, disk-cache hits, platter references, and simulated
// latency per read.
//
// Expected shape, descending the stack:
//   agent hit:         0 messages, 0 disk refs, ~0 simulated cost
//   service-cache hit: messages > 0, service hits > 0, 0 disk refs
//   disk-cache hit:    messages > 0, service misses, disk-cache hits,
//                      0 platter refs
//   cold:              messages > 0, platter refs > 0, highest latency
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr std::size_t kReadBytes = 32 * 1024;

struct Stack {
  core::DistributedFileFacility facility{DefaultFacility()};
  core::Machine* machine = nullptr;
  ObjectDescriptor od = 0;
  FileId fid{};

  Stack() {
    machine = &facility.AddMachine();
    od = *machine->file_agent->Create(naming::ByName("hot"),
                                      file::ServiceType::kBasic);
    fid = *facility.naming().ResolveFile(naming::ByName("hot"));
    (void)machine->file_agent->Write(od, Pattern(kReadBytes));
    (void)machine->file_agent->Flush(od);
    (void)facility.files().FlushAll();
  }
  virtual ~Stack() = default;

  std::uint64_t DiskCacheHits() {
    std::uint64_t n = 0;
    for (const auto& d : facility.disks().disks()) {
      n += d->cache_stats().hits;
    }
    return n;
  }

  void MeasuredRead(benchmark::State& state) {
    std::vector<std::uint8_t> out(kReadBytes);
    std::uint64_t reads = 0, messages = 0, refs = 0;
    std::uint64_t service_hits = 0, disk_hits = 0;
    SimTime sim_total = 0;
    for (auto _ : state) {
      Recondition();
      facility.ResetStats();
      const std::uint64_t disk_hits0 = DiskCacheHits();
      const SimTime t0 = facility.clock().Now();
      auto n = machine->file_agent->Pread(od, 0, out);
      if (!n.ok() || *n != kReadBytes) state.SkipWithError("read failed");
      sim_total += facility.clock().Now() - t0;
      messages += facility.bus().stats().calls;
      refs += TotalReadRefs(facility);
      service_hits += facility.files().stats().cache_hits;
      disk_hits += DiskCacheHits() - disk_hits0;
      ++reads;
    }
    state.counters["sim_us_per_read"] =
        static_cast<double>(sim_total) / kSimMicrosecond / reads;
    state.counters["messages"] = static_cast<double>(messages) / reads;
    state.counters["platter_refs"] = static_cast<double>(refs) / reads;
    state.counters["service_cache_hits"] =
        static_cast<double>(service_hits) / reads;
    state.counters["disk_cache_hits"] =
        static_cast<double>(disk_hits) / reads;
  }

  virtual void Recondition() = 0;
};

void BM_L1_HitAgentCache(benchmark::State& state) {
  struct S : Stack {
    void Recondition() override {
      std::vector<std::uint8_t> warm(kReadBytes);
      (void)machine->file_agent->Pread(od, 0, warm);  // agent cache warm
    }
  } s;
  s.MeasuredRead(state);
}
BENCHMARK(BM_L1_HitAgentCache)->Iterations(20);

void BM_L2_HitFileServiceCache(benchmark::State& state) {
  struct S : Stack {
    void Recondition() override {
      machine->file_agent->Crash();  // agent cold
      std::vector<std::uint8_t> warm(kReadBytes);
      (void)facility.files().Read(fid, 0, warm);  // service cache warm
      od = *machine->file_agent->OpenById(fid);
    }
  } s;
  s.MeasuredRead(state);
}
BENCHMARK(BM_L2_HitFileServiceCache)->Iterations(20);

void BM_L3_HitDiskTrackCache(benchmark::State& state) {
  struct S : Stack {
    void Recondition() override {
      machine->file_agent->Crash();
      std::vector<std::uint8_t> warm(kReadBytes);
      (void)facility.files().Read(fid, 0, warm);  // warms disk cache too
      facility.files().Crash();  // ...then drop the service level only
      od = *machine->file_agent->OpenById(fid);
      // Opening reloads the index table; drop the service BLOCK cache it
      // may have repopulated, keeping the disk track cache warm.
    }
  } s;
  s.MeasuredRead(state);
}
BENCHMARK(BM_L3_HitDiskTrackCache)->Iterations(20);

void BM_L4_ColdFromPlatter(benchmark::State& state) {
  struct S : Stack {
    void Recondition() override {
      machine->file_agent->Crash();
      od = *machine->file_agent->OpenById(fid);  // open first...
      ColdCaches(facility);  // ...then chill EVERY layer below the agent
    }
  } s;
  s.MeasuredRead(state);
}
BENCHMARK(BM_L4_ColdFromPlatter)->Iterations(20);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
