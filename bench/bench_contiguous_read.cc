// E2 — the contiguity count: "all successive blocks, which are contiguous,
// can be cached using one single invocation of get-block, instead of count
// number of invocations" (§5).
//
// Sweep: read an n-block file laid out (a) fully contiguous vs (b) fully
// fragmented (every block relocated by a shadow-style replace). Expected
// shape: contiguous costs O(1) disk references regardless of n; fragmented
// costs ~n; the simulated latency gap widens linearly.
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

FileId MakeFile(core::DistributedFileFacility& f, std::uint64_t blocks,
                bool fragmented) {
  auto file = f.files().Create(file::ServiceType::kBasic,
                               blocks * kBlockSize);
  (void)f.files().Write(*file, 0, Pattern(blocks * kBlockSize));
  if (fragmented) {
    // Relocate every block to a fresh location scattered over the disk —
    // exactly what repeated shadow-page commits do to a file (§6.7).
    for (std::uint64_t b = 0; b < blocks; ++b) {
      auto old = f.files().LocateBlock(*file, b);
      auto shadow = f.files().AllocateShadowBlock(*file);
      auto server = f.disks().Get(shadow->disk);
      std::vector<std::uint8_t> content(kBlockSize);
      (void)f.files().ReadBlock(*file, b, content);
      (void)(*server)->PutBlock(shadow->first, kFragmentsPerBlock, content);
      (void)f.files().ReplaceBlock(*file, b, shadow->disk, shadow->first);
      // Pin the freed slot and burn the rest of the track, so consecutive
      // shadow blocks land on DIFFERENT tracks — otherwise best-fit reuse
      // plus track readahead would mask the fragmentation.
      (void)(*server)->AllocateSpecific(old->first_fragment,
                                        kFragmentsPerBlock);
      (void)(*server)->AllocateFragments(32);
    }
  }
  (void)f.files().FlushAll();
  return *file;
}

void RunRead(benchmark::State& state, bool fragmented) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  core::DistributedFileFacility facility(DefaultFacility(1, 128 * 1024));
  const FileId file = MakeFile(facility, blocks, fragmented);

  std::vector<std::uint8_t> out(blocks * kBlockSize);
  std::uint64_t refs = 0, reads = 0;
  SimTime sim_total = 0;
  for (auto _ : state) {
    ColdCaches(facility);
    // Deltas, not ResetStats: the drained metrics.json keeps the setup
    // writes too, so the baseline gate sees the whole workload's refs.
    const std::uint64_t refs0 = TotalReadRefs(facility);
    const SimTime t0 = facility.clock().Now();
    auto n = facility.files().Read(file, 0, out);
    if (!n.ok()) {
      state.SkipWithError("read failed");
      return;
    }
    sim_total += facility.clock().Now() - t0;
    refs += TotalReadRefs(facility) - refs0;
    ++reads;
  }
  state.counters["disk_refs"] = static_cast<double>(refs) / reads;
  state.counters["sim_ms"] = SimMillis(sim_total) / reads;
  state.counters["contiguity"] = *facility.files().ContiguityIndex(file);
  state.counters["blocks"] = static_cast<double>(blocks);
}

void BM_ContiguousLayout(benchmark::State& state) { RunRead(state, false); }
void BM_FragmentedLayout(benchmark::State& state) { RunRead(state, true); }

BENCHMARK(BM_ContiguousLayout)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Iterations(3);
BENCHMARK(BM_FragmentedLayout)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Iterations(3);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
