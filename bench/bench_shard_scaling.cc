// E21 — metadata-plane shard scaling: the same mixed open/write/resolve
// storm driven against 1, 2, 4 and 8 metadata shards (docs/SHARDING.md).
//
// The storm pre-creates a fleet of named files, buckets them by the
// placement map's home shard, and then drives one lane per shard
// (sim::ParallelSection: elapsed = busiest lane, not the sum) where each
// lane hammers its own shard with open → pwrite → flush → close →
// resolve cycles. Because the placement map gives every shard a disjoint
// slice of the FileId space, the lanes never contend on a metadata
// instance, and aggregate throughput should grow near-linearly until the
// shared disk substrate saturates.
//
//  * BM_ShardScalingMetadataStorm — the table row: ops, simulated
//    elapsed, throughput per shard count.
//  * BM_ShardScalingSpeedup — the acceptance gate: 8-shard aggregate
//    throughput must be at least 3x the 1-shard figure, or the bench
//    fails loudly (SkipWithError).
#include "bench/bench_util.h"
#include "sim/parallel.h"

namespace rhodos::bench {
namespace {

constexpr std::uint32_t kFiles = 64;
constexpr std::uint32_t kRounds = 6;
constexpr std::size_t kWriteBytes = 512;

struct StormResult {
  double ops = 0;
  double elapsed_ms = 0;
  double ops_per_ms = 0;
  bool ok = false;
};

// Builds a facility with `shards` metadata shards and runs the storm.
// Write policy is pinned to write-through for EVERY shard count so the
// single-shard run does not get a delayed-write discount the sharded runs
// (which are fenced, hence write-through) are denied — the comparison is
// about metadata-plane parallelism, not write policy.
StormResult RunStorm(std::uint32_t shards) {
  StormResult result;
  core::FacilityConfig cfg = DefaultFacility(8, 8 * 1024);
  cfg.sharding.file_shards = shards;
  cfg.sharding.naming_shards = shards;
  cfg.file.basic_write_policy = disk::WritePolicy::kWriteThrough;
  core::DistributedFileFacility f(cfg);
  for (std::uint32_t s = 0; s < shards; ++s) (void)f.AddMachine();

  // Fleet setup: named files, bucketed by their home shard so each lane
  // talks to exactly one metadata instance during the storm.
  std::vector<std::vector<naming::AttributedName>> bucket(shards);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    const auto name = naming::ByName("shardbench-" + std::to_string(i));
    auto& agent = *f.machine(i % shards).file_agent;
    auto od = agent.Create(name, file::ServiceType::kBasic, 8 * kWriteBytes);
    if (!od.ok()) return result;
    auto id = agent.FileOf(*od);
    if (!id.ok() || !agent.Close(*od).ok()) return result;
    bucket[f.placement().map().ShardForFile(*id)].push_back(name);
  }

  const auto chunk = Pattern(kWriteBytes, 3);
  std::uint64_t ops = 0;
  const SimTime start = f.clock().Now();
  {
    sim::ParallelSection section(&f.clock());
    for (std::uint32_t s = 0; s < shards; ++s) {
      section.BeginLane();
      auto& agent = *f.machine(s).file_agent;
      for (std::uint32_t round = 0; round < kRounds; ++round) {
        for (const auto& name : bucket[s]) {
          auto od = agent.Open(name);
          if (!od.ok()) return result;
          if (!agent.Pwrite(*od, (round * kWriteBytes) % (8 * kWriteBytes),
                            chunk)
                   .ok()) {
            return result;
          }
          if (!agent.Flush(*od).ok()) return result;
          if (!agent.Close(*od).ok()) return result;
          if (!f.naming().ResolveFile(name).ok()) return result;
          ++ops;
        }
      }
      section.EndLane();
    }
    section.Commit();
  }
  result.elapsed_ms = SimMillis(f.clock().Now() - start);
  result.ops = static_cast<double>(ops);
  result.ops_per_ms =
      result.elapsed_ms > 0 ? result.ops / result.elapsed_ms : 0;
  result.ok = ops == static_cast<std::uint64_t>(kFiles) * kRounds;
  return result;
}

void BM_ShardScalingMetadataStorm(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const StormResult r = RunStorm(shards);
    if (!r.ok) {
      state.SkipWithError("storm failed");
      return;
    }
    state.counters["shards"] = shards;
    state.counters["storm_ops"] = r.ops;
    state.counters["sim_elapsed_ms"] = r.elapsed_ms;
    state.counters["ops_per_sim_ms"] = r.ops_per_ms;
  }
}
BENCHMARK(BM_ShardScalingMetadataStorm)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ShardScalingSpeedup(benchmark::State& state) {
  for (auto _ : state) {
    const StormResult one = RunStorm(1);
    const StormResult eight = RunStorm(8);
    if (!one.ok || !eight.ok) {
      state.SkipWithError("storm failed");
      return;
    }
    const double speedup =
        one.ops_per_ms > 0 ? eight.ops_per_ms / one.ops_per_ms : 0;
    if (speedup < 3.0) {
      state.SkipWithError("8-shard throughput fell below 3x the 1-shard run");
      return;
    }
    state.counters["speedup_8v1"] = speedup;
    state.counters["ops_per_sim_ms_1"] = one.ops_per_ms;
    state.counters["ops_per_sim_ms_8"] = eight.ops_per_ms;
  }
}
BENCHMARK(BM_ShardScalingSpeedup)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
