// E8 — locking granularity (§6.1): record locking "maximizes the
// concurrent execution of transactions"; file locking "incurs low overhead
// due to locking, since there are fewer locks to manage ... however, file
// level locking reduces concurrency, since operations are more likely to
// conflict".
//
// Workload: W worker threads each run transactions updating a small random
// byte range of a shared 32-block file, at record / page / file locking.
// Columns: committed transactions per second (wall clock — contention is
// the real phenomenon here), lock waits, timeout aborts, locks managed.
//
// Expected shape: at 1 worker the three levels are close (file locking
// slightly cheapest per txn — fewest locks); as workers grow, record
// locking scales, page locking sits in between, file locking serializes
// everything and throughput flattens while aborts climb.
#include "bench/bench_util.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace rhodos::bench {
namespace {

constexpr std::uint64_t kFileBlocks = 32;
constexpr int kTxnsPerWorker = 40;
// Locks are held across this much "computation" per transaction; it is the
// lock-hold time that makes granularity matter.
constexpr auto kThinkTime = std::chrono::microseconds(300);

void RunWorkload(benchmark::State& state, file::LockLevel level) {
  const int workers = static_cast<int>(state.range(0));
  std::uint64_t committed_total = 0, aborted_total = 0;
  std::uint64_t waits = 0, grants = 0;
  double records_peak = 0;
  double workload_seconds = 0;

  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(1, 16 * 1024);
    cfg.txn.lock_timeout.lt = std::chrono::milliseconds(20);
    cfg.txn.lock_timeout.n = 4;
    core::DistributedFileFacility facility(cfg);
    auto& txns = facility.transactions();

    auto t0 = txns.Begin(ProcessId{0});
    auto file = txns.TCreate(*t0, level, kFileBlocks * kBlockSize);
    (void)txns.TWrite(*t0, *file, 0, Pattern(kFileBlocks * kBlockSize));
    (void)txns.End(*t0);

    std::atomic<std::uint64_t> committed{0}, aborted{0};
    auto worker = [&](int id) {
      Rng rng(100 + id);
      for (int i = 0; i < kTxnsPerWorker; ++i) {
        const std::uint64_t offset =
            rng.Below(kFileBlocks * kBlockSize - 64);
        auto t = txns.Begin(ProcessId{static_cast<std::uint64_t>(id)});
        const auto update = Pattern(64, static_cast<std::uint8_t>(i));
        const bool wrote = txns.TWrite(*t, *file, offset, update).ok();
        if (wrote) std::this_thread::sleep_for(kThinkTime);  // locks held
        if (wrote && txns.End(*t).ok()) {
          ++committed;
        } else {
          if (txns.IsActive(*t)) (void)txns.Abort(*t);
          ++aborted;
        }
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    const auto wall0 = std::chrono::steady_clock::now();
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker, w);
    for (auto& th : threads) th.join();
    workload_seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();

    committed_total += committed.load();
    aborted_total += aborted.load();
    waits += txns.locks().stats().waits;
    grants += txns.locks().stats().grants;
    records_peak = static_cast<double>(txns.locks().stats().records_peak);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(committed_total));
  state.counters["committed"] = static_cast<double>(committed_total);
  state.counters["aborted"] = static_cast<double>(aborted_total);
  state.counters["lock_waits"] = static_cast<double>(waits);
  state.counters["locks_granted"] = static_cast<double>(grants);
  state.counters["lock_records_peak"] = records_peak;
  state.counters["txn_per_sec"] =
      static_cast<double>(committed_total) / workload_seconds;
}

void BM_RecordLocking(benchmark::State& state) {
  RunWorkload(state, file::LockLevel::kRecord);
}
void BM_PageLocking(benchmark::State& state) {
  RunWorkload(state, file::LockLevel::kPage);
}
void BM_FileLocking(benchmark::State& state) {
  RunWorkload(state, file::LockLevel::kFile);
}

BENCHMARK(BM_RecordLocking)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_PageLocking)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_FileLocking)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
