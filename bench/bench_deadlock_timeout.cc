// E9 — timeout-based deadlock resolution (§6.4): locks are invulnerable
// for LT, renewable to at most N*LT; a competitor breaks a lapsed lock and
// the holder's transaction is aborted.
//
// The paper names the scheme's two costs explicitly: "the number of
// transactions timing out will increase as the load on the RHODOS system
// increases" and "transactions taking a long time will be penalized."
// Both are regenerated here.
//
// Workload A (load sweep): W workers contend for a handful of file-level
// locks; abort rate vs W. Workload B (long-txn penalty): one deliberately
// slow transaction holds a lock while short competitors arrive; the slow
// one is broken. Workload C (true deadlock): cyclic lock order; resolution
// time vs LT.
#include "bench/bench_util.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace rhodos::bench {
namespace {

core::FacilityConfig TimeoutConfig(int lt_ms) {
  core::FacilityConfig cfg = DefaultFacility(1, 16 * 1024);
  cfg.txn.lock_timeout.lt = std::chrono::milliseconds(lt_ms);
  cfg.txn.lock_timeout.n = 3;
  return cfg;
}

// A: abort rate versus load, at fixed LT.
void BM_AbortRateVsLoad(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::uint64_t committed = 0, aborted = 0;
  for (auto _ : state) {
    core::DistributedFileFacility facility(TimeoutConfig(5));
    auto& txns = facility.transactions();
    // Two hot file-level-locked files: every transaction needs both, in a
    // worker-dependent order, so waits and deadlocks are common.
    auto setup = txns.Begin(ProcessId{0});
    auto a = txns.TCreate(*setup, file::LockLevel::kFile, kBlockSize);
    auto b = txns.TCreate(*setup, file::LockLevel::kFile, kBlockSize);
    (void)txns.TWrite(*setup, *a, 0, Pattern(64));
    (void)txns.TWrite(*setup, *b, 0, Pattern(64));
    (void)txns.End(*setup);

    std::atomic<std::uint64_t> ok{0}, bad{0};
    auto worker = [&](int id) {
      Rng rng(500 + id);
      for (int i = 0; i < 30; ++i) {
        auto t = txns.Begin(ProcessId{static_cast<std::uint64_t>(id)});
        // Mostly a consistent lock order; occasionally reversed, so the
        // deadlock probability grows with concurrency instead of being
        // certain for every overlapping pair.
        const bool reversed = rng.Chance(0.2);
        const FileId first = reversed ? *b : *a;
        const FileId second = reversed ? *a : *b;
        const auto data = Pattern(32, static_cast<std::uint8_t>(id));
        bool ok2 = txns.TWrite(*t, first, 0, data).ok();
        // Compute while holding the first lock: this is what makes waits
        // (and lock breaks) happen under load.
        if (ok2) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ok2 = ok2 && txns.TWrite(*t, second, 0, data).ok();
        if (ok2 && txns.End(*t).ok()) {
          ++ok;
        } else {
          if (txns.IsActive(*t)) (void)txns.Abort(*t);
          ++bad;
        }
      }
    };
    std::vector<std::thread> threads;
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker, w);
    for (auto& th : threads) th.join();
    committed += ok.load();
    aborted += bad.load();
  }
  state.counters["committed"] = static_cast<double>(committed);
  state.counters["aborted"] = static_cast<double>(aborted);
  state.counters["abort_rate_pct"] =
      100.0 * static_cast<double>(aborted) /
      static_cast<double>(committed + aborted);
}
BENCHMARK(BM_AbortRateVsLoad)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// B: the long-transaction penalty. A slow holder (sleeping past N*LT) is
// suspected deadlocked and broken even though it was merely slow.
void BM_LongTransactionPenalty(benchmark::State& state) {
  const int lt_ms = static_cast<int>(state.range(0));
  std::uint64_t slow_broken = 0, rounds = 0;
  for (auto _ : state) {
    core::DistributedFileFacility facility(TimeoutConfig(lt_ms));
    auto& txns = facility.transactions();
    auto setup = txns.Begin(ProcessId{0});
    auto file = txns.TCreate(*setup, file::LockLevel::kFile, kBlockSize);
    (void)txns.TWrite(*setup, *file, 0, Pattern(64));
    (void)txns.End(*setup);

    auto slow = txns.Begin(ProcessId{1});
    (void)txns.TWrite(*slow, *file, 0, Pattern(32, 1));
    std::thread competitor([&] {
      auto t = txns.Begin(ProcessId{2});
      (void)txns.TWrite(*t, *file, 0, Pattern(32, 2));
      (void)txns.End(*t);
    });
    // The slow transaction "computes" well past its lock's lifetime.
    std::this_thread::sleep_for(std::chrono::milliseconds(4 * lt_ms));
    const bool broken = !txns.End(*slow).ok();
    competitor.join();
    slow_broken += broken ? 1 : 0;
    ++rounds;
  }
  state.counters["slow_txn_aborted"] =
      static_cast<double>(slow_broken) / rounds;
  state.counters["LT_ms"] = static_cast<double>(lt_ms);
}
BENCHMARK(BM_LongTransactionPenalty)->Arg(5)->Arg(20)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// C: a genuine two-transaction deadlock; the timeout rule bounds how long
// the system stays stuck, proportional to LT.
void BM_DeadlockResolutionTime(benchmark::State& state) {
  const int lt_ms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::DistributedFileFacility facility(TimeoutConfig(lt_ms));
    auto& txns = facility.transactions();
    auto setup = txns.Begin(ProcessId{0});
    auto a = txns.TCreate(*setup, file::LockLevel::kFile, kBlockSize);
    auto b = txns.TCreate(*setup, file::LockLevel::kFile, kBlockSize);
    (void)txns.TWrite(*setup, *a, 0, Pattern(8));
    (void)txns.TWrite(*setup, *b, 0, Pattern(8));
    (void)txns.End(*setup);

    // Deadlock: t1 holds a wants b; t2 holds b wants a.
    auto t1 = txns.Begin(ProcessId{1});
    auto t2 = txns.Begin(ProcessId{2});
    (void)txns.TWrite(*t1, *a, 0, Pattern(8, 1));
    (void)txns.TWrite(*t2, *b, 0, Pattern(8, 2));
    std::atomic<int> done{0};
    std::thread u([&] {
      (void)txns.TWrite(*t1, *b, 0, Pattern(8, 1));
      if (txns.IsActive(*t1)) (void)(txns.End(*t1).ok() || txns.Abort(*t1).ok());
      ++done;
    });
    std::thread v([&] {
      (void)txns.TWrite(*t2, *a, 0, Pattern(8, 2));
      if (txns.IsActive(*t2)) (void)(txns.End(*t2).ok() || txns.Abort(*t2).ok());
      ++done;
    });
    u.join();
    v.join();
    state.counters["breaks"] =
        static_cast<double>(txns.locks().stats().breaks);
  }
  state.counters["LT_ms"] = static_cast<double>(lt_ms);
}
BENCHMARK(BM_DeadlockResolutionTime)->Arg(5)->Arg(20)->Arg(80)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
