// E5 — track caching in the disk service (§4): "this service retrieves only
// those blocks/fragments from a disk track which are necessary ... then the
// disk service caches the rest of the data from the same track ... to
// satisfy any subsequent requests ... pertaining to the same track."
//
// Workloads: sequential block reads and strided (every other block) reads
// over a multi-track file, with the track cache + readahead on vs off.
// Expected shape: with the cache on, only the first touch of each track
// pays a reference; hit rates climb toward (1 - tracks/blocks); simulated
// time drops accordingly. The no-cache column is the paper's "Bullet
// server" cautionary tale.
#include "bench/bench_util.h"

#include "disk/disk_server.h"

namespace rhodos::bench {
namespace {

disk::DiskServerConfig ServerConfig(bool caching) {
  disk::DiskServerConfig c;
  c.geometry.total_fragments = 64 * 1024;
  c.geometry.fragments_per_track = 32;  // 8 blocks per track
  c.cache_capacity_tracks = caching ? 64 : 0;
  c.track_readahead = caching;
  return c;
}

constexpr std::uint64_t kBlocks = 128;  // 1 MiB region, 16 tracks

void RunPattern(benchmark::State& state, bool caching, std::uint64_t stride) {
  SimClock clock;
  disk::DiskServer server(DiskId{0}, ServerConfig(caching), &clock);
  const FragmentIndex base =
      *server.AllocateBlocks(static_cast<std::uint32_t>(kBlocks));
  const auto data = Pattern(kBlocks * kBlockSize);
  (void)server.PutBlock(base,
                        static_cast<std::uint32_t>(kBlocks *
                                                   kFragmentsPerBlock),
                        data);

  std::vector<std::uint8_t> out(kBlockSize);
  std::uint64_t rounds = 0;
  std::uint64_t refs = 0;
  SimTime sim_total = 0;
  for (auto _ : state) {
    // Cold device cache each round so rounds are identical.
    server.Crash();
    (void)server.Recover();
    server.ResetStats();
    const SimTime t0 = clock.Now();
    for (std::uint64_t b = 0; b < kBlocks; b += stride) {
      (void)server.GetBlock(base + b * kFragmentsPerBlock,
                            kFragmentsPerBlock, out);
    }
    sim_total += clock.Now() - t0;
    refs += server.main_stats().read_references;
    ++rounds;
    state.counters["cache_hit_rate"] = server.cache_stats().HitRate();
  }
  state.counters["disk_refs"] = static_cast<double>(refs) / rounds;
  state.counters["sim_ms"] = SimMillis(sim_total) / rounds;
  state.counters["blocks_read"] =
      static_cast<double>((kBlocks + stride - 1) / stride);
}

void BM_Sequential_TrackCacheOn(benchmark::State& state) {
  RunPattern(state, true, 1);
}
void BM_Sequential_TrackCacheOff(benchmark::State& state) {
  RunPattern(state, false, 1);
}
void BM_Strided_TrackCacheOn(benchmark::State& state) {
  RunPattern(state, true, 2);
}
void BM_Strided_TrackCacheOff(benchmark::State& state) {
  RunPattern(state, false, 2);
}
BENCHMARK(BM_Sequential_TrackCacheOn)->Iterations(3);
BENCHMARK(BM_Sequential_TrackCacheOff)->Iterations(3);
BENCHMARK(BM_Strided_TrackCacheOn)->Iterations(3);
BENCHMARK(BM_Strided_TrackCacheOff)->Iterations(3);

// Re-read of a working set that fits in the cache: zero disk references.
void BM_WarmRereads(benchmark::State& state) {
  SimClock clock;
  disk::DiskServer server(DiskId{0}, ServerConfig(true), &clock);
  const FragmentIndex base = *server.AllocateBlocks(16);
  const auto data = Pattern(16 * kBlockSize);
  (void)server.PutBlock(base, 64, data);
  std::vector<std::uint8_t> out(kBlockSize);
  (void)server.GetBlock(base, kFragmentsPerBlock, out);  // warm
  server.ResetStats();
  for (auto _ : state) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      (void)server.GetBlock(base + b * kFragmentsPerBlock,
                            kFragmentsPerBlock, out);
    }
  }
  state.counters["disk_refs_total"] =
      static_cast<double>(server.main_stats().read_references);
  state.counters["cache_hit_rate"] = server.cache_stats().HitRate();
}
BENCHMARK(BM_WarmRereads)->Iterations(10);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
