// E23 — O(1) snapshots and writable clones. The paper's recovery story
// (stable storage §4, intentions lists §6) makes mutation cheap to undo;
// E23 measures the other direction: capturing a file's state must cost a
// CONSTANT number of disk references, independent of file size, because a
// capture writes one image table and one journal record — never the data.
//
// Rows:
//   * BM_SnapshotCost/<blocks>: one Snapshot() of a 64..4096-block file.
//     The interesting shape is FLAT disk_write_refs across the range; the
//     baseline gate (scripts/bench_baseline.sh) holds the total constant,
//     so an accidental O(n) capture fails --check.
//   * BM_CloneFirstWrite vs BM_ExclusiveWrite: the copy-on-write penalty a
//     clone pays exactly once per shared block, against the same write to
//     an unshared file.
//   * BM_SnapshotReadDuringOriginWrites: interleaved origin writes and
//     snapshot reads — the snapshot read path adds no copies; only the
//     origin's first write per block pays the split.
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

std::uint64_t TotalStableWriteRefs(core::DistributedFileFacility& f) {
  std::uint64_t n = 0;
  for (const auto& d : f.disks().disks()) {
    n += d->stable_stats().write_references;
  }
  return n;
}

void BM_SnapshotCost(benchmark::State& state) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t writes = 0, stable_writes = 0, rounds = 0;
  SimTime sim_total = 0;
  for (auto _ : state) {
    core::DistributedFileFacility facility(DefaultFacility());
    auto file = facility.files().Create(file::ServiceType::kBasic,
                                        blocks * kBlockSize);
    // Materialize a spread of blocks so the capture is of a real file, not
    // a hole; the count stays fixed so only `blocks` varies across rows.
    const auto chunk = Pattern(kBlockSize);
    for (std::uint64_t b = 0; b < blocks; b += blocks / 16) {
      (void)facility.files().Write(*file, b * kBlockSize, chunk);
    }
    (void)facility.files().Flush(*file);
    facility.ResetStats();
    const SimTime t0 = facility.clock().Now();
    auto snap = facility.files().Snapshot(*file);
    benchmark::DoNotOptimize(snap);
    sim_total += facility.clock().Now() - t0;
    writes += TotalWriteRefs(facility);
    stable_writes += TotalStableWriteRefs(facility);
    ++rounds;
  }
  state.counters["file_blocks"] = static_cast<double>(blocks);
  state.counters["disk_write_refs"] = static_cast<double>(writes) / rounds;
  state.counters["stable_write_refs"] =
      static_cast<double>(stable_writes) / rounds;
  state.counters["sim_ms"] = SimMillis(sim_total) / rounds;
}
BENCHMARK(BM_SnapshotCost)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Iterations(3);

// One block-sized write to a fresh clone (pays the copy-on-write split)
// against the identical write to an exclusively-owned file.
void RunFirstWrite(benchmark::State& state, bool through_clone) {
  std::uint64_t writes = 0, copied = 0, rounds = 0;
  SimTime sim_total = 0;
  for (auto _ : state) {
    core::DistributedFileFacility facility(DefaultFacility());
    auto file =
        facility.files().Create(file::ServiceType::kBasic, 64 * kBlockSize);
    const auto block = Pattern(kBlockSize);
    for (int b = 0; b < 64; ++b) {
      (void)facility.files().Write(*file, b * kBlockSize, block);
    }
    (void)facility.files().Flush(*file);
    FileId target = *file;
    if (through_clone) {
      target = *facility.files().Clone(*file);
    }
    facility.ResetStats();
    const std::uint64_t copied_before =
        facility.files().stats().cow_blocks_copied;
    const SimTime t0 = facility.clock().Now();
    (void)facility.files().Write(target, 0, Pattern(kBlockSize, 9));
    (void)facility.files().Flush(target);
    sim_total += facility.clock().Now() - t0;
    writes += TotalWriteRefs(facility);
    copied += facility.files().stats().cow_blocks_copied - copied_before;
    ++rounds;
  }
  state.counters["disk_write_refs"] = static_cast<double>(writes) / rounds;
  state.counters["cow_blocks_copied"] = static_cast<double>(copied) / rounds;
  state.counters["sim_ms"] = SimMillis(sim_total) / rounds;
}
void BM_CloneFirstWrite(benchmark::State& state) {
  RunFirstWrite(state, /*through_clone=*/true);
}
void BM_ExclusiveWrite(benchmark::State& state) {
  RunFirstWrite(state, /*through_clone=*/false);
}
BENCHMARK(BM_CloneFirstWrite)->Iterations(3);
BENCHMARK(BM_ExclusiveWrite)->Iterations(3);

// Origin keeps taking writes while a reader walks the snapshot: every read
// must come back from the frozen image (the service re-reads the shared or
// preserved block), and the origin pays each block's split exactly once.
void BM_SnapshotReadDuringOriginWrites(benchmark::State& state) {
  constexpr int kBlocks = 64;
  std::uint64_t reads = 0, splits = 0, rounds = 0;
  SimTime sim_total = 0;
  for (auto _ : state) {
    core::DistributedFileFacility facility(DefaultFacility());
    auto file = facility.files().Create(file::ServiceType::kBasic,
                                        kBlocks * kBlockSize);
    const auto block = Pattern(kBlockSize);
    for (int b = 0; b < kBlocks; ++b) {
      (void)facility.files().Write(*file, b * kBlockSize, block);
    }
    (void)facility.files().Flush(*file);
    auto snap = facility.files().Snapshot(*file);
    facility.ResetStats();
    const std::uint64_t splits_before = facility.files().stats().cow_splits;
    std::vector<std::uint8_t> out(kBlockSize);
    const SimTime t0 = facility.clock().Now();
    for (int b = 0; b < kBlocks; ++b) {
      (void)facility.files().Write(*file, b * kBlockSize,
                                   Pattern(kBlockSize, 7));
      (void)facility.files().Read(*snap, b * kBlockSize, out);
    }
    sim_total += facility.clock().Now() - t0;
    reads += TotalReadRefs(facility);
    splits += facility.files().stats().cow_splits - splits_before;
    ++rounds;
  }
  state.counters["disk_read_refs"] = static_cast<double>(reads) / rounds;
  state.counters["cow_splits"] = static_cast<double>(splits) / rounds;
  state.counters["sim_ms"] = SimMillis(sim_total) / rounds;
}
BENCHMARK(BM_SnapshotReadDuringOriginWrites)->Iterations(3);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
