// E24 — cache-tier read fan-out: a million-reader hot file served from the
// agents' caches instead of the origin's spindles.
//
// The cache-tier bet (DESIGN.md §5) is that a redirect costs the reader ONE
// extra exchange on its first miss, and buys the origin a read it never
// performs: agents holding valid callback promises peer-serve immutable,
// version-token-stamped clean blocks, so the origin's disk-reference count
// stays ~O(1) per file block (the warm-up fills) no matter how many readers
// arrive. This bench sweeps simulated readers 10^4 → 10^6 against the
// serving-tier size and measures both sides of that trade:
//
//   * reads_per_sim_sec     — aggregate cold-read throughput (overlapped
//                             reader lanes via sim::ParallelSection)
//   * origin_refs_per_read  — origin disk reads per cold read; GATED < 0.1
//                             with a tier (vs ~1.0 at tier 0: the 8-buffer
//                             origin block pool thrashes on a 64-block file)
//   * peer_serve_rate       — fraction of cold reads a peer answered
//   * msgs_per_read         — exchange cost of the redirect detour
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "sim/parallel.h"

namespace rhodos::bench {
namespace {

constexpr std::size_t kBlock = 8 * 1024;
constexpr std::uint64_t kFileBlocks = 64;  // 512 KiB hot file
constexpr int kPoolMachines = 64;          // overlapped cold-reader lanes

std::uint64_t BusCalls(core::DistributedFileFacility& f) {
  return f.bus().stats().calls;
}

void BM_ReadFanout(benchmark::State& state) {
  const std::int64_t readers = state.range(0);
  const int tier = static_cast<int>(state.range(1));
  core::FacilityConfig cfg = DefaultFacility();
  cfg.agent.delayed_write = true;
  cfg.agent.cache_blocks = 128;  // a tier agent can hold the whole file
  // The origin's caches are far smaller than the file, so every read the
  // tier does NOT absorb descends to the platters — the row's cost signal.
  // (The strided read pattern below defeats track locality too.)
  cfg.file.block_pool_capacity = 8;
  cfg.disk_cache_tracks = 2;
  cfg.track_readahead = false;
  cfg.callback.lease_ns = 600 * kSimSecond;  // leases outlive the run
  cfg.cache_tier.enabled = tier > 0;
  core::DistributedFileFacility f(cfg);

  core::Machine& writer = f.AddMachine();
  auto wd = *writer.file_agent->Create(naming::ByName("fanout"),
                                       file::ServiceType::kBasic);
  (void)writer.file_agent->Pwrite(wd, 0, Pattern(kFileBlocks * kBlock));
  (void)writer.file_agent->Flush(wd);

  // Warm the serving tier: each agent reads the whole file, registering its
  // held block ranges with the read router. Once the file trips the hot
  // threshold the later tier agents warm up from the EARLIER ones — the
  // tier builds itself peer-to-peer.
  std::vector<std::uint8_t> out(kBlock);
  for (int i = 0; i < tier; ++i) {
    core::Machine& m = f.AddMachine();
    auto rd = *m.file_agent->Open(naming::ByName("fanout"));
    for (std::uint64_t b = 0; b < kFileBlocks; ++b) {
      if (!m.file_agent->Pread(rd, b * kBlock, out).ok()) {
        state.SkipWithError("tier warmup read failed");
        return;
      }
    }
  }

  // The reader crowd: a bounded pool of machines, crash-cycled so every
  // simulated reader arrives with a cold cache and no promise — kPool
  // readers in flight at once, `readers` of them in total.
  std::vector<core::Machine*> pool;
  pool.reserve(kPoolMachines);
  for (int i = 0; i < kPoolMachines; ++i) pool.push_back(&f.AddMachine());

  const std::uint64_t refs0 = TotalReadRefs(f);
  const std::uint64_t calls0 = BusCalls(f);
  const SimTime t0 = f.clock().Now();
  std::int64_t done = 0;
  for (auto _ : state) {
    while (done < readers) {
      sim::ParallelSection section(&f.clock());
      for (core::Machine* m : pool) {
        if (done >= readers) break;
        section.BeginLane();
        m->file_agent->Crash();
        auto rd = m->file_agent->Open(naming::ByName("fanout"));
        // Stride 29 (coprime to 64) spreads successive readers across the
        // file, so the origin's tiny caches get no sequential-locality help.
        const std::uint64_t block =
            (static_cast<std::uint64_t>(done) * 29) % kFileBlocks;
        if (!rd.ok() ||
            !m->file_agent->Pread(*rd, block * kBlock, out).ok()) {
          state.SkipWithError("cold read failed");
          return;
        }
        ++done;
        section.EndLane();
      }
      section.Commit();
    }
  }

  const double reads = static_cast<double>(done);
  const double refs = static_cast<double>(TotalReadRefs(f) - refs0);
  const double sim_s = SimMillis(f.clock().Now() - t0) / 1e3;
  std::uint64_t fetches = 0;
  for (core::Machine* m : pool) {
    fetches += m->file_agent->stats().peer_fetches;
  }
  state.counters["reads_per_sim_sec"] = sim_s == 0.0 ? 0.0 : reads / sim_s;
  state.counters["origin_refs_per_read"] = refs / reads;
  state.counters["msgs_per_read"] =
      static_cast<double>(BusCalls(f) - calls0) / reads;
  state.counters["peer_serve_rate"] = static_cast<double>(fetches) / reads;
  state.SetItemsProcessed(done);

  // The tentpole's perf claim, gated: with a serving tier the origin's
  // disks are out of the read path — refs stay at warm-up noise while the
  // tier-less row pays ~one reference per read.
  if (tier > 0 && refs / reads >= 0.1) {
    state.SkipWithError("cache tier failed to absorb origin disk reads");
  }
  if (tier > 0 && static_cast<double>(fetches) / reads < 0.5) {
    state.SkipWithError("peers served under half of the cold reads");
  }
}
BENCHMARK(BM_ReadFanout)
    ->Args({10000, 0})
    ->Args({10000, 2})
    ->Args({10000, 8})
    ->Args({100000, 8})
    ->Args({1000000, 32})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
