// E22 — the invalidation storm: one writer against a crowd of readers all
// holding callback promises on the same hot file.
//
// The callback bet (DESIGN.md §callbacks) is that ONE break per writer
// mutation replaces ONE validation per reader open/read. This bench
// measures both sides of that trade as the crowd grows 10^2 → 10^4:
//
//   * breaks_per_write       — the fan-out a mutation pays (should track N)
//   * sim_ms_per_write       — simulated cost of the break round (the
//                              parallel fan-out charges max-lane, not sum)
//   * msgs_per_warm_read     — GATED AT ZERO: once a reader has refetched
//                              after a break, its reads must cost no
//                              exchanges at all while the promise holds
//   * warm reads/s           — client-side throughput of the fast path
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr std::size_t kBlock = 8 * 1024;

std::uint64_t BusCalls(core::DistributedFileFacility& f) {
  return f.bus().stats().calls;
}

void BM_CallbackStorm(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  core::FacilityConfig cfg = DefaultFacility();
  cfg.agent.delayed_write = true;
  cfg.agent.cache_blocks = 2;  // bound memory: 10^4 agents ride along
  // A long lease so the crowd's warm-up cannot expire the early grants.
  cfg.callback.lease_ns = 60 * kSimSecond;
  core::DistributedFileFacility f(cfg);

  core::Machine& writer = f.AddMachine();
  auto wd = *writer.file_agent->Create(naming::ByName("hot"),
                                      file::ServiceType::kBasic);
  (void)writer.file_agent->Pwrite(wd, 0, Pattern(kBlock));
  (void)writer.file_agent->Flush(wd);

  std::vector<core::Machine*> crowd;
  std::vector<ObjectDescriptor> rds;
  crowd.reserve(readers);
  rds.reserve(readers);
  std::vector<std::uint8_t> out(kBlock);
  for (int i = 0; i < readers; ++i) {
    core::Machine& r = f.AddMachine();
    auto rd = *r.file_agent->Open(naming::ByName("hot"));
    (void)r.file_agent->Pread(rd, 0, out);  // prime cache + promise
    crowd.push_back(&r);
    rds.push_back(rd);
  }

  std::uint64_t writes = 0, warm_reads = 0, warm_calls = 0;
  std::uint64_t breaks_before = f.file_server().stats().callback_breaks;
  SimTime write_sim = 0;
  std::uint8_t round = 1;
  for (auto _ : state) {
    // One mutation: the server revokes every reader's promise before the
    // flush reply comes back.
    const SimTime t0 = f.clock().Now();
    if (!writer.file_agent->Pwrite(wd, 0, Pattern(kBlock, round)).ok() ||
        !writer.file_agent->Flush(wd).ok()) {
      state.SkipWithError("write failed");
    }
    write_sim += f.clock().Now() - t0;
    ++writes;
    ++round;

    // Every reader refetches once (miss + new grant)...
    for (int i = 0; i < readers; ++i) {
      if (!crowd[i]->file_agent->Pread(rds[i], 0, out).ok()) {
        state.SkipWithError("refetch failed");
      }
    }
    // ...and from then on reads are warm again: ZERO exchanges, gated.
    const std::uint64_t calls_before = BusCalls(f);
    for (int i = 0; i < readers; ++i) {
      if (!crowd[i]->file_agent->Pread(rds[i], 0, out).ok()) {
        state.SkipWithError("warm read failed");
      }
      ++warm_reads;
    }
    warm_calls += BusCalls(f) - calls_before;
  }
  if (warm_calls != 0) {
    state.SkipWithError("warm reads under callbacks cost exchanges");
  }

  const std::uint64_t breaks =
      f.file_server().stats().callback_breaks - breaks_before;
  state.counters["breaks_per_write"] =
      writes == 0 ? 0.0
                  : static_cast<double>(breaks) / static_cast<double>(writes);
  state.counters["sim_ms_per_write"] =
      writes == 0 ? 0.0 : SimMillis(write_sim) / static_cast<double>(writes);
  state.counters["msgs_per_warm_read"] =
      warm_reads == 0
          ? 0.0
          : static_cast<double>(warm_calls) / static_cast<double>(warm_reads);
  state.SetItemsProcessed(static_cast<std::int64_t>(warm_reads));
}
BENCHMARK(BM_CallbackStorm)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
