// E18 — group commit (§6.6): amortizing the intention-log force.
//
// The paper's commit rule charges every transaction one synchronous stable-
// storage force for its intentions. Under concurrent commit traffic the
// LogPipeline batches those forces: records from every transaction that
// reaches tend() inside the batching window ride one vectored stable write
// and all of them acknowledge off that single disk reference.
//
// Workload: 16 writer threads, each committing kRounds single-page
// transactions against its own file. Swept over the pipeline disabled (the
// batch-size-1 pre-pipeline behaviour: every record forced at append) and
// enabled with max_batch 1, 4 and 16.
// Columns: log forces per committed transaction, stable write references
// per transaction, simulated time per commit.
//
// Expected shape: disabled pays ~4 forces per transaction (begin, redo,
// commit, completed each forced alone); the pipeline collapses that to well
// under one force per transaction at 16 writers — the >= 4x disk-reference
// saving E18 exists to demonstrate.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr int kWriters = 16;
constexpr int kRounds = 8;

struct StormResult {
  std::uint64_t commits = 0;
  std::uint64_t forces = 0;       // log device forces (vectored puts)
  std::uint64_t stable_refs = 0;  // stable write references, all disks
  std::uint64_t batches = 0;      // batch frames those forces carried
  SimTime sim_time = 0;
};

std::uint64_t StableWriteRefs(core::DistributedFileFacility& f) {
  std::uint64_t n = 0;
  for (const auto& d : f.disks().disks()) {
    n += d->stable_stats().write_references;
  }
  return n;
}

StormResult RunStorm(core::DistributedFileFacility& facility) {
  auto& txns = facility.transactions();
  std::vector<FileId> files;
  for (int w = 0; w < kWriters; ++w) {
    auto t = txns.Begin(ProcessId{1});
    auto file = txns.TCreate(*t, file::LockLevel::kPage, kBlockSize);
    (void)txns.TWrite(*t, *file, 0,
                      Pattern(kBlockSize, static_cast<std::uint8_t>(w + 1)));
    (void)txns.End(*t);
    files.push_back(*file);
  }

  const std::uint64_t commits0 = txns.stats().commits;
  const std::uint64_t forces0 = txns.log().stats().forces;
  const std::uint64_t batches0 = txns.log().stats().batches;
  const std::uint64_t stable0 = StableWriteRefs(facility);
  const SimTime t0 = facility.clock().Now();

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        auto t = txns.Begin(ProcessId{static_cast<std::uint64_t>(w + 1)});
        if (!t.ok()) return;
        (void)txns.TWrite(
            *t, files[w], 0,
            Pattern(kBlockSize,
                    static_cast<std::uint8_t>(w * kRounds + r + 1)));
        (void)txns.End(*t);
      }
    });
  }
  for (std::thread& t : writers) t.join();

  StormResult r;
  r.commits = txns.stats().commits - commits0;
  r.forces = txns.log().stats().forces - forces0;
  r.batches = txns.log().stats().batches - batches0;
  r.stable_refs = StableWriteRefs(facility) - stable0;
  r.sim_time = facility.clock().Now() - t0;
  return r;
}

void Report(benchmark::State& state, const StormResult& r) {
  const auto commits = static_cast<double>(r.commits);
  state.counters["txn_commits"] = commits;
  state.counters["log_forces"] = static_cast<double>(r.forces);
  state.counters["log_forces_per_txn"] =
      commits > 0 ? static_cast<double>(r.forces) / commits : 0;
  state.counters["stable_refs_per_txn"] =
      commits > 0 ? static_cast<double>(r.stable_refs) / commits : 0;
  state.counters["records_per_batch"] =
      r.batches > 0 ? static_cast<double>(r.commits) * 4 /
                          static_cast<double>(r.batches)
                    : 0;
  state.counters["sim_us_per_commit"] =
      commits > 0 ? static_cast<double>(r.sim_time) / kSimMicrosecond / commits
                  : 0;
}

// Arg 0: pipeline disabled (batch-size-1 baseline). Arg N>0: pipeline
// enabled with max_batch = N and a short real-time leader window so the 16
// writers actually meet inside a batch.
void BM_GroupCommit16Writers(benchmark::State& state) {
  const int max_batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility();
    cfg.txn.log_fragments = 4096;  // no mid-storm truncation pressure
    cfg.txn.group_commit.enabled = max_batch > 0;
    if (max_batch > 0) {
      cfg.txn.group_commit.max_batch = static_cast<std::uint32_t>(max_batch);
      cfg.txn.group_commit.leader_window = std::chrono::milliseconds(2);
    }
    core::DistributedFileFacility facility(cfg);
    Report(state, RunStorm(facility));
  }
}
BENCHMARK(BM_GroupCommit16Writers)
    ->ArgName("max_batch")
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
