// E3 — two logical storage units (§4): 2 KiB fragments for structural
// (control) information, 8 KiB blocks for file data.
//
// "For the storage of structural information of fairly small size the use
// of fragments can substantially reduce communication overheads"; "a large
// block reduces the effect of latency" for data. The benchmark stores the
// same payloads under both unit choices, straight through the disk
// service, and reports bytes moved, internal waste, and simulated time.
//
// Expected shape: control structures (~600 B, like a file index table) in
// fragments move 4x fewer bytes than in blocks; bulk data in blocks needs
// no more references but amortizes seek+rotation over 4x more bytes per
// unit than fragments would.
#include "bench/bench_util.h"

#include "disk/disk_server.h"

namespace rhodos::bench {
namespace {

disk::DiskServerConfig ServerConfig() {
  disk::DiskServerConfig c;
  c.geometry.total_fragments = 64 * 1024;
  c.geometry.fragments_per_track = 32;
  c.cache_capacity_tracks = 0;  // measure the raw device economics
  c.track_readahead = false;
  return c;
}

// Writes `count` control structures of `payload` bytes each, one per unit.
void RunControlStructures(benchmark::State& state, std::uint32_t unit_frags) {
  const std::uint32_t kStructures = 200;
  const std::uint64_t payload = 600;  // a file index table-sized structure
  SimClock clock;
  disk::DiskServer server(DiskId{0}, ServerConfig(), &clock);
  std::vector<FragmentIndex> homes;
  for (std::uint32_t i = 0; i < kStructures; ++i) {
    homes.push_back(*server.AllocateFragments(unit_frags));
  }
  const auto data = Pattern(unit_frags * kFragmentSize);

  std::uint64_t rounds = 0;
  for (auto _ : state) {
    server.ResetStats();
    const SimTime t0 = clock.Now();
    for (FragmentIndex home : homes) {
      (void)server.PutBlock(home, unit_frags, data);
    }
    state.counters["sim_ms_write_all"] = SimMillis(clock.Now() - t0);
    state.counters["bytes_moved"] = static_cast<double>(
        server.main_stats().fragments_written * kFragmentSize);
    ++rounds;
  }
  (void)rounds;
  state.counters["bytes_useful"] =
      static_cast<double>(kStructures * payload);
  state.counters["internal_waste_pct"] =
      100.0 * (1.0 - static_cast<double>(payload) /
                         (unit_frags * kFragmentSize));
}

void BM_ControlData_Fragments(benchmark::State& state) {
  RunControlStructures(state, 1);  // one 2 KiB fragment each
}
void BM_ControlData_Blocks(benchmark::State& state) {
  RunControlStructures(state, kFragmentsPerBlock);  // one 8 KiB block each
}
BENCHMARK(BM_ControlData_Fragments)->Iterations(3);
BENCHMARK(BM_ControlData_Blocks)->Iterations(3);

// Bulk file data: sequential 1 MiB stream, read back unit by unit. Blocks
// amortize the per-reference mechanical cost over 4x the bytes.
void RunBulkData(benchmark::State& state, std::uint32_t unit_frags) {
  const std::uint64_t total_frags = 512;  // 1 MiB
  SimClock clock;
  disk::DiskServer server(DiskId{0}, ServerConfig(), &clock);
  const FragmentIndex base = *server.AllocateFragments(
      static_cast<std::uint32_t>(total_frags));
  const auto data = Pattern(total_frags * kFragmentSize);
  (void)server.PutBlock(base, static_cast<std::uint32_t>(total_frags), data);

  std::vector<std::uint8_t> out(unit_frags * kFragmentSize);
  for (auto _ : state) {
    server.ResetStats();
    const SimTime t0 = clock.Now();
    for (FragmentIndex f = 0; f < total_frags; f += unit_frags) {
      (void)server.GetBlock(base + f, unit_frags, out);
    }
    state.counters["sim_ms_read_1MiB"] = SimMillis(clock.Now() - t0);
    state.counters["disk_refs"] =
        static_cast<double>(server.main_stats().read_references);
  }
}

void BM_BulkData_Fragments(benchmark::State& state) { RunBulkData(state, 1); }
void BM_BulkData_Blocks(benchmark::State& state) {
  RunBulkData(state, kFragmentsPerBlock);
}
BENCHMARK(BM_BulkData_Fragments)->Iterations(3);
BENCHMARK(BM_BulkData_Blocks)->Iterations(3);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
