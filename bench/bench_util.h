// Shared helpers for the RHODOS benchmark harness.
//
// Every bench binary regenerates one row-set of the paper's evaluation (see
// DESIGN.md §4). The interesting columns are mostly *simulated* costs —
// disk references, seeks, simulated microseconds, messages — reported as
// google-benchmark counters; wall-clock time matters only for the genuine
// CPU microbenchmarks (free-space allocation, lock tables).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/facility.h"
#include "obs/metrics.h"

namespace rhodos::bench {

// Writes `registry`'s snapshot to <argv0>.metrics.json. Every bench binary
// emits this file (see EXPERIMENTS.md): the drained metrics of every
// facility the bench constructed, aggregated.
inline void WriteMetricsJson(const char* argv0,
                             const obs::MetricsRegistry& registry) {
  const std::string path = std::string(argv0) + ".metrics.json";
  std::ofstream out(path);
  out << registry.Snapshot().ToJson() << '\n';
  out.close();
  std::fprintf(stderr, "metrics written to %s\n", path.c_str());
}

}  // namespace rhodos::bench

// Drop-in replacement for BENCHMARK_MAIN(): installs a process-wide
// metrics drain so every facility a bench builds contributes its final
// StatsSnapshot(), then writes <binary>.metrics.json on exit.
#define RHODOS_BENCH_MAIN()                                                  \
  int main(int argc, char** argv) {                                          \
    rhodos::obs::MetricsRegistry rhodos_bench_drain;                         \
    rhodos::obs::SetGlobalMetricsDrain(&rhodos_bench_drain);                 \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    ::benchmark::RunSpecifiedBenchmarks();                                   \
    ::benchmark::Shutdown();                                                 \
    rhodos::obs::SetGlobalMetricsDrain(nullptr);                             \
    rhodos::bench::WriteMetricsJson(argv[0], rhodos_bench_drain);            \
    return 0;                                                                \
  }                                                                          \
  int rhodos_bench_main_requires_semicolon_

namespace rhodos::bench {

inline std::vector<std::uint8_t> Pattern(std::size_t n,
                                         std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return v;
}

inline core::FacilityConfig DefaultFacility(std::uint32_t disks = 1,
                                            std::uint64_t fragments =
                                                64 * 1024) {
  core::FacilityConfig c;
  c.disk_count = disks;
  c.geometry.total_fragments = fragments;  // 128 MiB per disk by default
  c.geometry.fragments_per_track = 32;
  return c;
}

// Sum of main-device read references across all disks.
inline std::uint64_t TotalReadRefs(core::DistributedFileFacility& f) {
  std::uint64_t n = 0;
  for (const auto& d : f.disks().disks()) {
    n += d->main_stats().read_references;
  }
  return n;
}

inline std::uint64_t TotalWriteRefs(core::DistributedFileFacility& f) {
  std::uint64_t n = 0;
  for (const auto& d : f.disks().disks()) {
    n += d->main_stats().write_references;
  }
  return n;
}

inline std::uint64_t TotalSeekTracks(core::DistributedFileFacility& f) {
  std::uint64_t n = 0;
  for (const auto& d : f.disks().disks()) {
    n += d->main_stats().tracks_seeked;
  }
  return n;
}

// Drops every volatile cache between the client and the platters, so the
// next access is a genuinely cold read.
inline void ColdCaches(core::DistributedFileFacility& f) {
  f.files().Crash();
  for (const auto& d : f.disks().disks()) {
    d->Crash();
    (void)d->Recover();
  }
}

inline double SimMillis(SimTime t) {
  return static_cast<double>(t) / kSimMillisecond;
}

}  // namespace rhodos::bench
