// E14 (ablation) — dynamic creation of file index tables (§5, §7).
//
// The paper claims two benefits of creating each index table on demand,
// next to its file's first data block, instead of accumulating them in a
// reserved area (the classic inode-region design):
//   * "the file index table and at least the first data block are always
//     contiguous thus eliminating the seek time to retrieve the first
//     data block";
//   * "the file index tables are distributed throughout the disk and hence
//     the file facility does not run the risk of loosing all of them
//     together."
//
// Layout A (RHODOS): tables created adjacent to their data. Layout B
// (ablation): all tables clustered at the front of the disk, data far
// away. Metrics: arm movement + simulated time for an open-and-read sweep
// over many files, and the number of files whose table survives a
// two-track media burn at the hottest table location.
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr int kFiles = 48;
constexpr std::uint64_t kFileBytes = 4 * kBlockSize;

struct Layout {
  core::DistributedFileFacility facility{DefaultFacility(1, 128 * 1024)};
  std::vector<FileId> files;
};

// Layout A: the facility's native behaviour.
void BuildAdjacent(Layout& l) {
  for (int i = 0; i < kFiles; ++i) {
    auto file = l.facility.files().Create(file::ServiceType::kBasic,
                                          kFileBytes);
    (void)l.facility.files().Write(*file, 0,
                                   Pattern(kFileBytes,
                                           static_cast<std::uint8_t>(i)));
    l.files.push_back(*file);
  }
  (void)l.facility.files().FlushAll();
}

// Layout B: the ablation. All index tables first (they cluster at the
// front of the disk), then a large spacer, then every file's data — the
// table and the data end up thousands of tracks apart.
void BuildClustered(Layout& l) {
  for (int i = 0; i < kFiles; ++i) {
    auto file = l.facility.files().Create(file::ServiceType::kBasic, 0);
    l.files.push_back(*file);
  }
  auto disk = l.facility.disks().Get(DiskId{0});
  const auto spacer = static_cast<std::uint32_t>(
      (*disk)->FreeFragmentCount() / 2);
  const FragmentIndex spacer_at = *(*disk)->AllocateFragments(spacer);
  for (int i = 0; i < kFiles; ++i) {
    (void)l.facility.files().Write(l.files[static_cast<std::size_t>(i)], 0,
                                   Pattern(kFileBytes,
                                           static_cast<std::uint8_t>(i)));
  }
  (void)l.facility.files().FlushAll();
  (void)(*disk)->FreeFragments(spacer_at, spacer);
}

void MeasureOpenReadSweep(benchmark::State& state, bool clustered) {
  Layout l;
  if (clustered) {
    BuildClustered(l);
  } else {
    BuildAdjacent(l);
  }
  std::vector<std::uint8_t> out(kBlockSize);
  std::uint64_t seeks = 0, rounds = 0;
  SimTime sim_total = 0;
  for (auto _ : state) {
    ColdCaches(l.facility);
    l.facility.disks().ResetStats();
    const SimTime t0 = l.facility.clock().Now();
    // The classic metadata workload: visit every file, read its table and
    // first block (open + first access).
    for (FileId f : l.files) {
      (void)l.facility.files().Read(f, 0, out);
    }
    sim_total += l.facility.clock().Now() - t0;
    seeks += TotalSeekTracks(l.facility);
    ++rounds;
  }
  state.counters["seek_tracks"] = static_cast<double>(seeks) / rounds;
  state.counters["sim_ms"] = SimMillis(sim_total) / rounds;
  state.counters["files"] = kFiles;
}

void BM_AdjacentTables_OpenSweep(benchmark::State& state) {
  MeasureOpenReadSweep(state, false);
}
void BM_ClusteredTables_OpenSweep(benchmark::State& state) {
  MeasureOpenReadSweep(state, true);
}
BENCHMARK(BM_AdjacentTables_OpenSweep)->Iterations(3);
BENCHMARK(BM_ClusteredTables_OpenSweep)->Iterations(3);

// The reliability half of the claim: burn two tracks at the location of
// file 0's table (both main and stable copies — a localized media
// catastrophe) and count surviving files.
void MeasureBurn(benchmark::State& state, bool clustered) {
  std::uint64_t survivors_total = 0, rounds = 0;
  for (auto _ : state) {
    Layout l;
    if (clustered) {
      BuildClustered(l);
    } else {
      BuildAdjacent(l);
    }
    auto disk = l.facility.disks().Get(DiskId{0});
    const auto per_track = (*disk)->config().geometry.fragments_per_track;
    const FragmentIndex burn_start =
        (file::FileFitFragment(l.files[0]) / per_track) * per_track;
    std::vector<std::uint8_t> junk(kFragmentSize, 0xFF);
    for (FragmentIndex f = burn_start; f < burn_start + 2 * per_track;
         ++f) {
      (*disk)->main_device().RawOverwrite(f, junk);
      (*disk)->stable_device().RawOverwrite(f, junk);
    }
    ColdCaches(l.facility);
    std::uint64_t survivors = 0;
    std::vector<std::uint8_t> out(16);
    for (FileId f : l.files) {
      if (l.facility.files().Read(f, 0, out).ok()) ++survivors;
    }
    survivors_total += survivors;
    ++rounds;
  }
  state.counters["files"] = kFiles;
  state.counters["survivors_after_burn"] =
      static_cast<double>(survivors_total) / rounds;
}

void BM_AdjacentTables_TrackBurn(benchmark::State& state) {
  MeasureBurn(state, false);
}
void BM_ClusteredTables_TrackBurn(benchmark::State& state) {
  MeasureBurn(state, true);
}
BENCHMARK(BM_AdjacentTables_TrackBurn)->Iterations(1);
BENCHMARK(BM_ClusteredTables_TrackBurn)->Iterations(1);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
