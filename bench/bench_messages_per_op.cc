// E16 — messages per operation, regenerated from the MetricsRegistry.
//
// The paper's agent layer exists to keep client operations off the
// network: "caching at each level" (§2.2) means a warm read or a
// delayed write costs ZERO messages, and the idempotent protocol (§3)
// means every cold operation is a fixed, small number of request/reply
// exchanges. This bench measures the exchange count per open / read /
// write straight from the facility's metrics registry (`bus.calls` in
// `Facility::StatsSnapshot()`), not from ad-hoc bus counters — the same
// numbers an operator would read out of DumpStats().
#include <cstdint>

#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr std::size_t kBlock = 8 * 1024;  // one service block

std::uint64_t BusCalls(core::DistributedFileFacility& f) {
  for (const auto& [name, v] : f.StatsSnapshot().counters) {
    if (name == "bus.calls") return v;
  }
  return 0;
}

struct Client {
  core::DistributedFileFacility facility;
  core::Machine* machine = nullptr;

  explicit Client(bool delayed_write) : facility([&] {
    core::FacilityConfig c = DefaultFacility();
    c.agent.delayed_write = delayed_write;
    return c;
  }()) {
    machine = &facility.AddMachine();
    auto od = *machine->file_agent->Create(naming::ByName("target"),
                                           file::ServiceType::kBasic);
    (void)machine->file_agent->Write(od, Pattern(4 * kBlock));
    (void)machine->file_agent->Close(od);
  }
};

// Exchanges to open an existing file by attributed name and close it
// again. The agent that created the file still holds its callback
// promise, so even this first open is zero-exchange; the cold cost
// (resolution + open) lives in BM_MessagesPerRead's cold row, which
// crashes the agent first.
void BM_MessagesPerOpen(benchmark::State& state) {
  Client c(/*delayed_write=*/true);
  std::uint64_t ops = 0, calls = 0;
  for (auto _ : state) {
    c.facility.ResetStats();
    auto od = c.machine->file_agent->Open(naming::ByName("target"));
    if (!od.ok()) state.SkipWithError("open failed");
    calls += BusCalls(c.facility);
    (void)c.machine->file_agent->Close(*od);
    ++ops;
  }
  state.counters["msgs_per_open"] =
      static_cast<double>(calls) / static_cast<double>(ops);
}
BENCHMARK(BM_MessagesPerOpen)->Iterations(16);

// Warm re-open: the binding sits in the agent's name cache (validated by
// the naming generation counter) and the open reply carries attributes +
// version token, so a re-open is ONE exchange and zero naming
// resolutions — the open row used to cost two exchanges plus a
// resolution.
void BM_MessagesPerWarmReopen(benchmark::State& state) {
  Client c(/*delayed_write=*/true);
  // Prime the name cache.
  auto warm = c.machine->file_agent->Open(naming::ByName("target"));
  if (!warm.ok()) state.SkipWithError("open failed");
  (void)c.machine->file_agent->Close(*warm);
  const std::uint64_t resolutions_before =
      c.facility.naming().stats().resolutions;
  std::uint64_t ops = 0, calls = 0;
  for (auto _ : state) {
    c.facility.ResetStats();
    auto od = c.machine->file_agent->Open(naming::ByName("target"));
    if (!od.ok()) state.SkipWithError("open failed");
    calls += BusCalls(c.facility);
    (void)c.machine->file_agent->Close(*od);
    ++ops;
  }
  state.counters["msgs_per_warm_reopen"] =
      static_cast<double>(calls) / static_cast<double>(ops);
  state.counters["naming_resolutions"] = static_cast<double>(
      c.facility.naming().stats().resolutions - resolutions_before);
}
BENCHMARK(BM_MessagesPerWarmReopen)->Iterations(16);

// Warm open under a held callback promise: the server promised to notify
// us of any change, so there is NOTHING to validate — the open is
// assembled entirely from the agent's cached attributes. This row is a
// GATE, not a measurement: any exchange at all fails the bench.
void BM_MessagesPerWarmOpenUnderCallback(benchmark::State& state) {
  Client c(/*delayed_write=*/true);
  // Prime: one open grants the callback and fills the name cache.
  auto warm = c.machine->file_agent->Open(naming::ByName("target"));
  if (!warm.ok()) state.SkipWithError("open failed");
  (void)c.machine->file_agent->Close(*warm);
  std::uint64_t ops = 0, calls = 0;
  for (auto _ : state) {
    c.facility.ResetStats();
    auto od = c.machine->file_agent->Open(naming::ByName("target"));
    if (!od.ok()) state.SkipWithError("open failed");
    calls += BusCalls(c.facility);
    (void)c.machine->file_agent->Close(*od);
    ++ops;
  }
  if (calls != 0) {
    state.SkipWithError("warm open under callback cost an exchange");
  }
  state.counters["msgs_per_warm_open_cb"] =
      static_cast<double>(calls) / static_cast<double>(ops);
  state.counters["callback_fast_opens"] =
      static_cast<double>(c.machine->file_agent->stats().callback_fast_opens);
}
BENCHMARK(BM_MessagesPerWarmOpenUnderCallback)->Iterations(16);

// Warm read under a held callback promise — same gate: zero exchanges, or
// the bench fails itself.
void BM_MessagesPerWarmReadUnderCallback(benchmark::State& state) {
  Client c(/*delayed_write=*/true);
  auto od = *c.machine->file_agent->Open(naming::ByName("target"));
  std::vector<std::uint8_t> out(kBlock);
  (void)c.machine->file_agent->Pread(od, 0, out);  // prime the block
  std::uint64_t ops = 0, calls = 0;
  for (auto _ : state) {
    c.facility.ResetStats();
    if (!c.machine->file_agent->Pread(od, 0, out).ok()) {
      state.SkipWithError("read failed");
    }
    calls += BusCalls(c.facility);
    ++ops;
  }
  if (calls != 0) {
    state.SkipWithError("warm read under callback cost an exchange");
  }
  state.counters["msgs_per_warm_read_cb"] =
      static_cast<double>(calls) / static_cast<double>(ops);
  (void)c.machine->file_agent->Close(od);
}
BENCHMARK(BM_MessagesPerWarmReadUnderCallback)->Iterations(16);

// One-block positional read: first cold (descends to the service), then
// warm (the agent cache answers — the §2.2 zero-message case).
void BM_MessagesPerRead(benchmark::State& state) {
  const bool warm = state.range(0) == 1;
  Client c(/*delayed_write=*/true);
  auto od = *c.machine->file_agent->Open(naming::ByName("target"));
  std::vector<std::uint8_t> out(kBlock);
  // Warm the agent cache once for the warm case.
  if (warm) (void)c.machine->file_agent->Pread(od, 0, out);
  std::uint64_t ops = 0, calls = 0;
  for (auto _ : state) {
    ObjectDescriptor target = od;
    if (!warm) {
      c.machine->file_agent->Crash();  // drop the agent cache
      target = *c.machine->file_agent->Open(naming::ByName("target"));
    }
    c.facility.ResetStats();
    if (!c.machine->file_agent->Pread(target, 0, out).ok()) {
      state.SkipWithError("read failed");
    }
    calls += BusCalls(c.facility);
    ++ops;
  }
  state.counters["msgs_per_read"] =
      static_cast<double>(calls) / static_cast<double>(ops);
}
BENCHMARK(BM_MessagesPerRead)
    ->Arg(0)  // cold: agent cache dropped first
    ->Arg(1)  // warm: served from the agent cache
    ->Iterations(16);

// One-block positional write under both agent policies: delayed write
// buffers locally (0 messages until close), write-through pays per write.
void BM_MessagesPerWrite(benchmark::State& state) {
  const bool delayed = state.range(0) == 1;
  Client c(delayed);
  auto od = *c.machine->file_agent->Open(naming::ByName("target"));
  const auto data = Pattern(kBlock);
  std::uint64_t ops = 0, calls = 0;
  for (auto _ : state) {
    c.facility.ResetStats();
    if (!c.machine->file_agent->Pwrite(od, 0, data).ok()) {
      state.SkipWithError("write failed");
    }
    calls += BusCalls(c.facility);
    ++ops;
  }
  state.counters["msgs_per_write"] =
      static_cast<double>(calls) / static_cast<double>(ops);
  (void)c.machine->file_agent->Close(od);
}
BENCHMARK(BM_MessagesPerWrite)
    ->Arg(0)  // write-through
    ->Arg(1)  // delayed write
    ->Iterations(16);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
