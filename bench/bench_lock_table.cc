// T1 — Table 1 of the paper: lock compatibility for RO / IR / IW.
//
// The custom main() prints the compatibility matrix exactly as the paper
// tabulates it, derived from the live LockManager (not from constants), so
// the table is *regenerated*, not transcribed. The benchmarks then measure
// the cost of the lock-table operations themselves (get-lock-record,
// set-lock, unlock — §6.5), including the effect the paper credits to
// keeping a separate table per locking level.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "txn/lock_manager.h"

namespace rhodos::txn {
namespace {

const ProcessId kProc{1};

// Probes the live lock manager: T1 holds `held`, T2 requests `requested`.
bool Granted(LockMode held, LockMode requested) {
  LockManager lm;
  const DataItem item = DataItem::Page(FileId{1}, 0);
  (void)lm.TryLock(LockLevel::kPage, TxnId{1}, kProc, TxnPhase::kLocking,
                   item, held);
  return lm
      .TryLock(LockLevel::kPage, TxnId{2}, kProc, TxnPhase::kLocking, item,
               requested)
      .ok();
}

// The same-transaction IR -> IW conversion cell.
bool ConversionGranted() {
  LockManager lm;
  const DataItem item = DataItem::Page(FileId{1}, 0);
  (void)lm.TryLock(LockLevel::kPage, TxnId{1}, kProc, TxnPhase::kLocking,
                   item, LockMode::kIRead);
  return lm
      .TryLock(LockLevel::kPage, TxnId{1}, kProc, TxnPhase::kLocking, item,
               LockMode::kIWrite)
      .ok();
}

void PrintTable1() {
  const LockMode modes[] = {LockMode::kReadOnly, LockMode::kIRead,
                            LockMode::kIWrite};
  std::printf("\n=== Table 1: Lock compatibility (regenerated) ===\n");
  std::printf("%-12s | %-10s %-10s %-10s\n", "lock set", "read-only",
              "Iread", "Iwrite");
  std::printf("-------------+---------------------------------\n");
  // The "None" row: everything is grantable on a free item.
  std::printf("%-12s | %-10s %-10s %-10s\n", "None", "ok", "ok", "ok");
  for (LockMode held : modes) {
    std::printf("%-12s |", std::string(LockModeName(held)).c_str());
    for (LockMode req : modes) {
      const char* cell = Granted(held, req) ? "ok" : "wait";
      if (held == LockMode::kIRead && req == LockMode::kIWrite) {
        cell = ConversionGranted() ? "conv/wait" : "wait";
      }
      std::printf(" %-10s", cell);
    }
    std::printf("\n");
  }
  std::printf("(conv/wait: IW granted only as a conversion by the SAME "
              "transaction holding the IR)\n\n");
}

// --- §6.5 lock-table operation costs -------------------------------------------

void BM_SetUnlockUncontended(benchmark::State& state) {
  LockManager lm;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const DataItem item = DataItem::Page(FileId{1}, i++ % 64);
    benchmark::DoNotOptimize(lm.TryLock(LockLevel::kPage, TxnId{1}, kProc,
                                        TxnPhase::kLocking, item,
                                        LockMode::kIWrite));
    benchmark::DoNotOptimize(lm.Unlock(LockLevel::kPage, TxnId{1}, item));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetUnlockUncontended);

void BM_GetLockRecord(benchmark::State& state) {
  // Search cost as the table grows: the paper argues separate tables keep
  // the record count per table small.
  LockManager lm;
  const std::int64_t population = state.range(0);
  for (std::int64_t i = 0; i < population; ++i) {
    (void)lm.TryLock(LockLevel::kPage, TxnId{static_cast<std::uint64_t>(i)},
                     kProc, TxnPhase::kLocking,
                     DataItem::Page(FileId{1}, static_cast<std::uint64_t>(i)),
                     LockMode::kReadOnly);
  }
  const DataItem probe =
      DataItem::Page(FileId{1}, static_cast<std::uint64_t>(population / 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lm.GetLockRecord(LockLevel::kPage,
                         TxnId{static_cast<std::uint64_t>(population / 2)},
                         probe));
  }
  state.counters["records_in_table"] =
      static_cast<double>(lm.RecordCount(LockLevel::kPage));
}
BENCHMARK(BM_GetLockRecord)->Arg(8)->Arg(64)->Arg(512);

void BM_SeparateVsSharedTables(benchmark::State& state) {
  // Models the paper's claim: with one table per level, a search only scans
  // that level's records. `spread` = 1 puts all records in one level
  // (shared-table behaviour); 3 spreads them (separate tables).
  const bool separate = state.range(0) == 1;
  LockManager lm;
  const int kRecords = 300;
  for (int i = 0; i < kRecords; ++i) {
    const LockLevel level =
        separate ? static_cast<LockLevel>(i % 3) : LockLevel::kPage;
    (void)lm.TryLock(level, TxnId{static_cast<std::uint64_t>(i)}, kProc,
                     TxnPhase::kLocking,
                     DataItem::Record(FileId{static_cast<std::uint64_t>(i)},
                                      0, 10),
                     LockMode::kReadOnly);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.GetLockRecord(
        LockLevel::kPage, TxnId{150},
        DataItem::Record(FileId{150}, 0, 10)));
  }
  state.counters["records_in_searched_table"] =
      static_cast<double>(lm.RecordCount(LockLevel::kPage));
}
BENCHMARK(BM_SeparateVsSharedTables)
    ->Arg(0)  // all records in one table
    ->Arg(1);  // spread over the three per-level tables

}  // namespace
}  // namespace rhodos::txn

int main(int argc, char** argv) {
  rhodos::obs::MetricsRegistry drain;
  rhodos::obs::SetGlobalMetricsDrain(&drain);
  rhodos::txn::PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rhodos::obs::SetGlobalMetricsDrain(nullptr);
  rhodos::bench::WriteMetricsJson(argv[0], drain);
  return 0;
}
