// E19 — coherent write-behind client caching, regenerated from the
// MetricsRegistry.
//
// The agent's per-file dirty-block index coalesces adjacent dirty blocks
// into runs and pushes a whole file to the server in ONE PwriteVec
// exchange, so the cost of a flush is one message, not one message per
// dirty block. The naming cache plus the callback promise riding the
// create/open reply make a warm re-open ZERO exchanges and zero naming
// work (the server swore to break the promise on any change, so there
// is nothing to validate).
// This bench pins both, plus the background write-behind batching, via
// `bus.calls` from the facility registry — the same numbers an operator
// reads out of DumpStats().
#include <cstdint>

#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr std::size_t kBlock = 8 * 1024;  // one service block
constexpr std::size_t kDirtyBlocks = 64;

std::uint64_t BusCalls(core::DistributedFileFacility& f) {
  for (const auto& [name, v] : f.StatsSnapshot().counters) {
    if (name == "bus.calls") return v;
  }
  return 0;
}

core::FacilityConfig WritebehindFacility(std::size_t threshold,
                                         SimTime age_ns) {
  core::FacilityConfig c = DefaultFacility();
  c.agent.delayed_write = true;
  c.agent.cache_blocks = 2 * kDirtyBlocks;  // hold the working set
  c.agent.writeback_threshold = threshold;
  c.agent.writeback_age_ns = age_ns;
  return c;
}

// Exchanges to flush 64 dirty blocks of one file. The old per-victim
// writeback paid one pwrite per block; the dirty index + PwriteVec pays
// one exchange for the coalesced run.
void BM_ExchangesPerFlush(benchmark::State& state) {
  // Background triggers off so the bench controls when the flush happens.
  core::DistributedFileFacility facility(
      WritebehindFacility(/*threshold=*/0, /*age_ns=*/0));
  core::Machine& m = facility.AddMachine();
  auto od = *m.file_agent->Create(naming::ByName("flush-target"),
                                  file::ServiceType::kBasic);
  const auto block = Pattern(kBlock);
  std::uint64_t ops = 0, calls = 0;
  for (auto _ : state) {
    for (std::size_t b = 0; b < kDirtyBlocks; ++b) {
      if (!m.file_agent->Pwrite(od, b * kBlock, block).ok()) {
        state.SkipWithError("write failed");
      }
    }
    facility.ResetStats();
    if (!m.file_agent->Flush(od).ok()) state.SkipWithError("flush failed");
    calls += BusCalls(facility);
    ++ops;
  }
  (void)m.file_agent->Close(od);
  state.counters["dirty_blocks"] = static_cast<double>(kDirtyBlocks);
  state.counters["exchanges_per_flush"] =
      static_cast<double>(calls) / static_cast<double>(ops);
}
BENCHMARK(BM_ExchangesPerFlush)->Iterations(8);

// Exchanges to re-open a file whose binding is warm in the agent's name
// cache and whose callback promise is still held: the cached attributes
// answer locally, so the whole operation is ZERO exchanges and zero
// naming resolutions (this row used to cost one validating exchange
// under the version-token scheme, and two plus a resolution before
// that).
void BM_ExchangesPerWarmReopen(benchmark::State& state) {
  core::DistributedFileFacility facility(
      WritebehindFacility(/*threshold=*/0, /*age_ns=*/0));
  core::Machine& m = facility.AddMachine();
  auto od = *m.file_agent->Create(naming::ByName("reopen-target"),
                                  file::ServiceType::kBasic);
  (void)m.file_agent->Write(od, Pattern(2 * kBlock));
  (void)m.file_agent->Close(od);
  // Prime the name cache (Create already did; one warm pass for clarity).
  (void)m.file_agent->Close(*m.file_agent->Open(
      naming::ByName("reopen-target")));
  const std::uint64_t resolutions_before =
      facility.naming().stats().resolutions;
  std::uint64_t ops = 0, calls = 0;
  for (auto _ : state) {
    facility.ResetStats();
    auto warm = m.file_agent->Open(naming::ByName("reopen-target"));
    if (!warm.ok()) state.SkipWithError("open failed");
    calls += BusCalls(facility);
    (void)m.file_agent->Close(*warm);
    ++ops;
  }
  state.counters["exchanges_per_warm_reopen"] =
      static_cast<double>(calls) / static_cast<double>(ops);
  state.counters["naming_resolutions"] = static_cast<double>(
      facility.naming().stats().resolutions - resolutions_before);
}
BENCHMARK(BM_ExchangesPerWarmReopen)->Iterations(16);

// Background write-behind: with a dirty threshold of 16, a 64-block
// streaming write drains in 64/16 threshold batches (one exchange each)
// instead of stalling Close with the whole backlog.
void BM_BackgroundWritebackBatches(benchmark::State& state) {
  std::uint64_t batches = 0, ops = 0;
  for (auto _ : state) {
    core::DistributedFileFacility facility(
        WritebehindFacility(/*threshold=*/16, /*age_ns=*/0));
    core::Machine& m = facility.AddMachine();
    auto od = *m.file_agent->Create(naming::ByName("stream"),
                                    file::ServiceType::kBasic);
    const auto block = Pattern(kBlock);
    for (std::size_t b = 0; b < kDirtyBlocks; ++b) {
      if (!m.file_agent->Pwrite(od, b * kBlock, block).ok()) {
        state.SkipWithError("write failed");
      }
    }
    batches += m.file_agent->stats().writeback_batches;
    (void)m.file_agent->Close(od);
    ++ops;
  }
  state.counters["writeback_batches_per_64_blocks"] =
      static_cast<double>(batches) / static_cast<double>(ops);
}
BENCHMARK(BM_BackgroundWritebackBatches)->Iterations(8);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
