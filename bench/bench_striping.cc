// E10 — file partitioning across disks (§7): "a file can be partitioned
// and therefore its contents can reside on more than one disk. Thus, the
// size of a file can be as large as the total space available on all the
// disks."
//
// Workload: write and then cold-read a 32 MiB file over D in {1,2,4,8}
// disks, reading in 8 MiB requests so every request spans all spindles.
// The file service groups each request's extents per disk, each disk's
// elevator coalesces its physically adjacent extents into one reference,
// and the per-disk sub-batches overlap (sim::ParallelSection) — so the
// simulated elapsed time of a striped read is the BUSIEST disk plus
// dispatch, not the sum. Columns: simulated elapsed ms, aggregate
// simulated throughput (MiB per simulated second), total refs, spindles
// carrying extents. Expected shape: throughput scales near-linearly with
// D; capacity scales with D (capacity row: a file bigger than any one
// spindle).
#include "bench/bench_util.h"

namespace rhodos::bench {
namespace {

constexpr std::uint64_t kFileBytes = 32ull * 1024 * 1024;

void BM_StripedColdRead(benchmark::State& state) {
  const auto disk_count = static_cast<std::uint32_t>(state.range(0));
  // Total capacity fixed at ~256 MiB regardless of D.
  core::FacilityConfig cfg =
      DefaultFacility(disk_count, (128 * 1024) / disk_count);
  cfg.file.extent_blocks = 32;              // 256 KiB stripe unit
  cfg.file.extend_in_place = disk_count == 1;
  cfg.file.readahead_blocks = 0;  // isolate striping from prefetching
  core::DistributedFileFacility facility(cfg);

  auto file = facility.files().Create(file::ServiceType::kBasic, 0);
  const auto stripe = Pattern(256 * 1024);
  for (std::uint64_t off = 0; off < kFileBytes; off += stripe.size()) {
    auto n = facility.files().Write(*file, off, stripe);
    if (!n.ok()) {
      state.SkipWithError("write failed");
      return;
    }
  }
  (void)facility.files().FlushAll();

  std::uint64_t rounds = 0, refs = 0;
  double elapsed_ms = 0, max_busy_ms = 0, sum_busy_ms = 0;
  std::uint32_t spindles_used = 0;
  for (auto _ : state) {
    ColdCaches(facility);
    facility.disks().ResetStats();
    const SimTime start = facility.clock().Now();
    std::vector<std::uint8_t> out(8 * 1024 * 1024);
    for (std::uint64_t off = 0; off < kFileBytes; off += out.size()) {
      (void)facility.files().Read(*file, off, out);
    }
    elapsed_ms = SimMillis(facility.clock().Now() - start);
    max_busy_ms = 0;
    sum_busy_ms = 0;
    spindles_used = 0;
    for (const auto& d : facility.disks().disks()) {
      const double busy = SimMillis(d->main_stats().time_charged);
      max_busy_ms = std::max(max_busy_ms, busy);
      sum_busy_ms += busy;
      if (d->main_stats().read_references > 0) ++spindles_used;
      refs += d->main_stats().read_references;
    }
    ++rounds;
  }
  state.counters["sim_elapsed_ms"] = elapsed_ms;  // overlapped completion
  state.counters["throughput_MiBps"] =
      static_cast<double>(kFileBytes) / (1024 * 1024) /
      (elapsed_ms / 1000.0);
  state.counters["parallel_completion_ms"] = max_busy_ms;  // busiest disk
  state.counters["total_device_ms"] = sum_busy_ms;
  state.counters["disk_refs"] = static_cast<double>(refs) / rounds;
  state.counters["spindles_used"] = spindles_used;
  state.SetBytesProcessed(static_cast<std::int64_t>(kFileBytes * rounds));
}
BENCHMARK(BM_StripedColdRead)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(2);

// Capacity: a file larger than any single disk still fits the facility.
void BM_FileLargerThanOneDisk(benchmark::State& state) {
  for (auto _ : state) {
    core::FacilityConfig cfg = DefaultFacility(4, 8 * 1024);  // 16 MiB/disk
    cfg.file.extent_blocks = 64;
    cfg.file.extend_in_place = false;
    core::DistributedFileFacility facility(cfg);
    auto file = facility.files().Create(file::ServiceType::kBasic, 0);
    // 40 MiB file on 16 MiB disks: impossible on one spindle.
    const auto chunk = Pattern(1024 * 1024);
    std::uint64_t written = 0;
    for (std::uint64_t off = 0; off < 40ull * 1024 * 1024;
         off += chunk.size()) {
      auto n = facility.files().Write(*file, off, chunk);
      if (!n.ok()) break;
      written += *n;
    }
    state.counters["file_MiB"] =
        static_cast<double>(written) / (1024 * 1024);
    std::uint32_t spindles = 0;
    for (const auto& d : facility.disks().disks()) {
      if (d->FreeFragmentCount() <
          d->TotalFragmentCount() - d->MetadataFragments() - 1024) {
        ++spindles;
      }
    }
    state.counters["spindles_holding_data"] = spindles;
  }
}
BENCHMARK(BM_FileLargerThanOneDisk)->Iterations(1);

}  // namespace
}  // namespace rhodos::bench

RHODOS_BENCH_MAIN();
