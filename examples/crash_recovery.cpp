// Crash recovery walkthrough: the intentions list, stable storage, and the
// WAL / shadow-page commit techniques (paper §6.6–§6.7).
//
// The example runs three scenarios against the same facility:
//   1. a transaction that commits, then the servers crash -> after
//      recovery the update is there (redo from the intentions list);
//   2. a transaction interrupted BEFORE its commit point -> after recovery
//      there is no trace of it (atomicity);
//   3. a main-platter corruption of a file index table -> the stable
//      storage mirror restores it.
//
// Build & run:  ./build/examples/crash_recovery
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/facility.h"

using namespace rhodos;

namespace {

std::vector<std::uint8_t> Bytes(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s),
          reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s)};
}

std::string ReadString(core::DistributedFileFacility& f, FileId id,
                       std::size_t n) {
  std::vector<std::uint8_t> buf(n, 0);
  auto got = f.files().Read(id, 0, buf);
  if (!got.ok()) return "<unreadable: " + got.error().ToString() + ">";
  return std::string(buf.begin(), buf.begin() + static_cast<long>(*got));
}

}  // namespace

int main() {
  core::FacilityConfig config;
  config.geometry.total_fragments = 16 * 1024;
  core::DistributedFileFacility facility(config);
  auto& txns = facility.transactions();

  // --- Scenario 1: committed work survives a crash --------------------------
  std::printf("== scenario 1: committed transaction vs crash ==\n");
  auto t1 = txns.Begin(ProcessId{1});
  auto account = txns.TCreate(*t1, file::LockLevel::kPage, 0);
  txns.TWrite(*t1, *account, 0, Bytes("balance=100"));
  txns.End(*t1);

  auto t2 = txns.Begin(ProcessId{1});
  txns.TWrite(*t2, *account, 0, Bytes("balance=250"));
  txns.End(*t2);  // COMMITTED: intention flag = commit on stable storage

  facility.CrashServers();
  std::printf("  ...servers crashed...\n");
  facility.RecoverServers();
  std::printf("  after recovery: \"%s\"  (expected balance=250)\n",
              ReadString(facility, *account, 11).c_str());

  // --- Scenario 2: an uncommitted transaction leaves no trace ----------------
  std::printf("== scenario 2: in-flight transaction vs crash ==\n");
  auto t3 = txns.Begin(ProcessId{1});
  txns.TWrite(*t3, *account, 0, Bytes("balance=999"));
  // No tend: the write exists only as a tentative data item.
  facility.CrashServers();
  std::printf("  ...servers crashed mid-transaction...\n");
  facility.RecoverServers();
  std::printf("  after recovery: \"%s\"  (tentative 999 discarded)\n",
              ReadString(facility, *account, 11).c_str());

  // --- Scenario 3: stable storage saves a corrupted index table --------------
  std::printf("== scenario 3: media damage vs stable storage ==\n");
  auto server = facility.disks().Get(file::FileDisk(*account));
  std::vector<std::uint8_t> garbage(kFragmentSize, 0xFF);
  (*server)->main_device().RawOverwrite(file::FileFitFragment(*account),
                                        garbage);
  facility.files().Crash();  // force a reload from disk
  std::printf("  ...main copy of the file index table overwritten...\n");
  std::printf("  read through stable-storage fallback: \"%s\"\n",
              ReadString(facility, *account, 11).c_str());

  std::printf("recovery stats: %llu transactions redone, %llu discarded\n",
              static_cast<unsigned long long>(
                  txns.stats().recovered_redone),
              static_cast<unsigned long long>(
                  txns.stats().recovered_discarded));
  return 0;
}
