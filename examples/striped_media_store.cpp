// Striped media store: a large file partitioned across several disks.
//
// "A file can be partitioned and therefore its contents can reside on more
// than one disk. Thus, the size of a file can be as large as the total
// space available on all the disks" (paper §7). This example stores a
// "video" far larger than any single disk could comfortably host, spreads
// its extents over 4 spindles, and shows how the simulated transfer time
// falls as more disks serve the sequential read.
//
// Build & run:  ./build/examples/striped_media_store
#include <cstdio>
#include <algorithm>
#include <vector>

#include "core/facility.h"

using namespace rhodos;

namespace {

std::vector<std::uint8_t> Frame(std::size_t n, std::uint32_t frame_no) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(frame_no * 131 + i * 7);
  }
  return v;
}

}  // namespace

int main() {
  constexpr std::size_t kVideoBytes = 8ull * 1024 * 1024;  // 8 MiB "video"
  constexpr std::uint32_t kFrameBytes = 64 * 1024;

  for (std::uint32_t disks : {1u, 2u, 4u}) {
    core::FacilityConfig config;
    config.disk_count = disks;
    config.geometry.total_fragments = 16 * 1024;  // 32 MiB per disk
    config.file.extent_blocks = 16;               // 128 KiB stripe unit
    config.file.extend_in_place = disks == 1;     // stripe when we can
    core::DistributedFileFacility facility(config);
    core::Machine& m = facility.AddMachine();

    auto od = m.file_agent->Create(naming::ByName("video.bin"),
                                   file::ServiceType::kBasic);
    if (!od.ok()) return 1;

    // Ingest the stream frame by frame.
    for (std::uint32_t f = 0; f * kFrameBytes < kVideoBytes; ++f) {
      auto frame = Frame(kFrameBytes, f);
      if (!m.file_agent->Write(*od, frame).ok()) return 1;
    }
    m.file_agent->Close(*od);

    // Play it back sequentially through a fresh machine (cold client
    // cache) and measure the simulated disk time.
    core::Machine& viewer = facility.AddMachine();
    auto vod = viewer.file_agent->Open(naming::ByName("video.bin"));
    if (!vod.ok()) return 1;
    facility.ResetStats();
    const SimTime start = facility.clock().Now();
    std::vector<std::uint8_t> playback(kFrameBytes);
    std::size_t bytes = 0;
    while (true) {
      auto n = viewer.file_agent->Read(*vod, playback);
      if (!n.ok() || *n == 0) break;
      bytes += *n;
    }
    const SimTime elapsed = facility.clock().Now() - start;

    // Verify the first frame round-tripped.
    viewer.file_agent->Lseek(*vod, 0, agent::SeekWhence::kSet);
    viewer.file_agent->Read(*vod, playback);
    const bool intact = playback == Frame(kFrameBytes, 0);

    std::uint64_t refs = 0;
    std::uint32_t disks_serving = 0;
    double busiest_ms = 0;  // the critical path if spindles run in parallel
    for (const auto& d : facility.disks().disks()) {
      refs += d->main_stats().read_references;
      if (d->main_stats().read_references > 0) ++disks_serving;
      busiest_ms = std::max(
          busiest_ms,
          static_cast<double>(d->main_stats().time_charged) /
              kSimMillisecond);
    }
    (void)elapsed;
    std::printf(
        "%u disk(s): streamed %zu MiB; busiest spindle %.0f simulated ms "
        "(%llu disk refs across %u spindles, data %s)\n",
        disks, bytes / (1024 * 1024), busiest_ms,
        static_cast<unsigned long long>(refs), disks_serving,
        intact ? "intact" : "CORRUPT");
  }
  std::printf("\nMore spindles -> extents interleave across disks, each "
              "arm serves a fraction of the file, and the parallel "
              "completion time (the busiest spindle) falls.\n");
  return 0;
}
