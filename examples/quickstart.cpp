// Quickstart: bring up the RHODOS distributed file facility, create a file
// through a client machine's file agent, write and read it back.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/facility.h"

using namespace rhodos;

int main() {
  // 1. Assemble the facility: two simulated disks, one file service, a
  //    message bus, and the service layers of the paper's Figure 1.
  core::FacilityConfig config;
  config.disk_count = 2;
  config.geometry.total_fragments = 16 * 1024;  // 32 MiB per disk
  core::DistributedFileFacility facility(config);

  // 2. Add a client workstation. Every machine gets a file agent, a device
  //    agent and a transaction agent host (paper §3).
  core::Machine& machine = facility.AddMachine();

  // 3. Create a file under an attributed name. The agent returns an object
  //    descriptor (> 100000 for files).
  auto od = machine.file_agent->Create(
      naming::AttributedName{{"name", "hello.txt"}, {"owner", "demo"}},
      file::ServiceType::kBasic);
  if (!od.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 od.error().ToString().c_str());
    return 1;
  }
  std::printf("created 'hello.txt', object descriptor = %lld\n",
              static_cast<long long>(*od));

  // 4. Write through the agent's cursor; the agent caches the data
  //    (delayed write) and pushes it to the file service at close.
  const std::string text = "Hello from the RHODOS distributed file facility!";
  auto wrote = machine.file_agent->Write(
      *od, {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
  if (!wrote.ok()) {
    std::fprintf(stderr, "write failed: %s\n",
                 wrote.error().ToString().c_str());
    return 1;
  }
  machine.file_agent->Close(*od);

  // 5. Re-open by attributed name (resolved by the naming service) and read.
  auto od2 = machine.file_agent->Open(naming::ByName("hello.txt"));
  std::vector<std::uint8_t> buffer(text.size());
  auto read = machine.file_agent->Pread(*od2, 0, buffer);
  std::printf("read back %llu bytes: \"%s\"\n",
              static_cast<unsigned long long>(*read),
              std::string(buffer.begin(), buffer.end()).c_str());

  // 6. A peek at the instrumentation the benchmarks use.
  const auto& net = facility.bus().stats();
  std::printf("bus: %llu calls, %llu bytes moved\n",
              static_cast<unsigned long long>(net.calls),
              static_cast<unsigned long long>(net.bytes_moved));
  for (const auto& d : facility.disks().disks()) {
    std::printf("disk %u: %llu read refs, %llu write refs, cache hit rate "
                "%.0f%%\n",
                d->id().value,
                static_cast<unsigned long long>(
                    d->main_stats().read_references),
                static_cast<unsigned long long>(
                    d->main_stats().write_references),
                100.0 * d->cache_stats().HitRate());
  }
  return 0;
}
