// Protected direct disk access (paper §1).
//
// "Most systems do not provide to their users direct access to a disk
// service. ... the performance of such programs can improve significantly,
// if they are allowed to directly use the functions provided by the disk
// service, however, in a limited and a protected manner."
//
// This example builds a tiny append-only event log — the kind of
// application that "manages its own concurrency control and crash
// recovery" — directly on a disk lease, bypassing the file service
// entirely, and shows the protection boundary holding when it strays
// outside its extent.
//
// Build & run:  ./build/examples/direct_disk_access
#include <cstdio>
#include <cstring>
#include <string>

#include "core/facility.h"
#include "disk/disk_lease.h"

using namespace rhodos;

namespace {

// A fragment-grained append log with a tiny header in fragment 0.
class LeaseLog {
 public:
  explicit LeaseLog(disk::DiskLease lease) : lease_(std::move(lease)) {}

  bool Append(const std::string& event) {
    std::vector<std::uint8_t> frag(kFragmentSize, 0);
    const auto len = static_cast<std::uint32_t>(
        std::min(event.size(), kFragmentSize - 4));
    std::memcpy(frag.data(), &len, 4);
    std::memcpy(frag.data() + 4, event.data(), len);
    // One fragment per event, starting after the header fragment. The
    // application chooses its own layout — that is the point of direct
    // disk access.
    if (!lease_.Put(1 + count_, 1, frag).ok()) return false;
    ++count_;
    std::vector<std::uint8_t> header(kFragmentSize, 0);
    std::memcpy(header.data(), &count_, 4);
    return lease_
        .Put(0, 1, header, disk::StableMode::kOriginalAndStable)
        .ok();
  }

  std::string Read(std::uint32_t index) const {
    std::vector<std::uint8_t> frag(kFragmentSize);
    if (!lease_.Get(1 + index, 1, frag).ok()) return "<error>";
    std::uint32_t len;
    std::memcpy(&len, frag.data(), 4);
    return std::string(frag.begin() + 4, frag.begin() + 4 + len);
  }

  const disk::DiskLease& lease() const { return lease_; }

 private:
  disk::DiskLease lease_;
  std::uint32_t count_ = 0;
};

}  // namespace

int main() {
  core::DistributedFileFacility facility;
  disk::DiskLeaseManager leases(&facility.disks());

  // The facility grants this program 32 fragments (64 KiB) of raw disk.
  auto lease = leases.Grant(32);
  if (!lease.ok()) {
    std::fprintf(stderr, "lease refused: %s\n",
                 lease.error().ToString().c_str());
    return 1;
  }
  std::printf("leased %u fragments at disk %u, fragment %llu\n",
              lease->fragments(), lease->info().disk.value,
              static_cast<unsigned long long>(lease->info().first));

  LeaseLog log(std::move(*lease));
  log.Append("power-on self test passed");
  log.Append("network link up");
  log.Append("first client connected");
  for (std::uint32_t i = 0; i < 3; ++i) {
    std::printf("event[%u] = \"%s\"\n", i, log.Read(i).c_str());
  }

  // The protection boundary: reaching outside the extent is refused, so
  // the rest of the disk — other files, other leases — is untouchable.
  std::vector<std::uint8_t> evil(kFragmentSize, 0xFF);
  auto st = log.lease().Put(32, 1, evil);
  std::printf("write past the extent -> %s\n",
              st.ok() ? "ALLOWED (protection failed!)"
                      : st.error().ToString().c_str());
  auto st2 = log.lease().Put(31, 2, std::vector<std::uint8_t>(
                                        2 * kFragmentSize, 0xFF));
  std::printf("write straddling the boundary -> %s\n",
              st2.ok() ? "ALLOWED (protection failed!)"
                       : st2.error().ToString().c_str());

  // Revocation: the facility reclaims the space; the handle goes stale.
  leases.Revoke(log.lease().info().id);
  auto st3 = log.lease().Get(0, 1, evil);
  std::printf("read after revocation -> %s\n",
              st3.ok() ? "ALLOWED (bug)" : st3.error().ToString().c_str());
  return 0;
}
