// Trace dump: Figure 1 drawn from a live run.
//
// Enables the facility's TraceRecorder, drives three representative client
// operations (an agent write-through, an agent cold read, a replicated
// write) and prints each operation's span tree — the layers the request
// actually crossed, with simulated-time offsets. This is the tool
// docs/OBSERVABILITY.md walks through.
//
// Build & run:  ./build/examples/trace_dump
//   --schema    print the metric catalogue (one name per line) and exit;
//               scripts/check.sh diffs this against docs/metrics_schema.golden
//   --json      print Facility::DumpStats(json=true) after the workload
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/facility.h"

using namespace rhodos;

namespace {

// The span trees read best when every operation descends the full stack,
// so the agent runs write-through and with a tiny cache.
core::FacilityConfig TraceFriendlyConfig() {
  core::FacilityConfig config;
  config.disk_count = 3;
  config.geometry.total_fragments = 16 * 1024;  // 32 MiB per disk
  config.agent.delayed_write = false;           // write-through
  config.agent.cache_blocks = 4;
  return config;
}

void PrintLatestTrace(core::DistributedFileFacility& facility,
                      const char* heading) {
  obs::TraceRecorder& tracer = facility.observability().tracer;
  std::printf("--- %s ---\n%s\n", heading,
              tracer.Render(tracer.LatestTraceId()).c_str());
}

int RunWorkload(bool dump_json) {
  core::DistributedFileFacility facility(TraceFriendlyConfig());
  core::Machine& machine = facility.AddMachine();
  facility.observability().tracer.Enable(true);

  // Op 1: create + write a file through the agent. Write-through, so the
  // write crosses agent -> rpc -> bus -> service -> file -> disk.
  auto od = machine.file_agent->Create(
      naming::AttributedName{{"name", "trace.txt"}}, file::ServiceType::kBasic);
  if (!od.ok()) {
    std::fprintf(stderr, "create failed: %s\n", od.error().ToString().c_str());
    return 1;
  }
  PrintLatestTrace(facility, "agent create");

  const std::string text = "every layer leaves a span";
  auto wrote = machine.file_agent->Pwrite(
      *od, 0,
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
  if (!wrote.ok()) {
    std::fprintf(stderr, "write failed: %s\n",
                 wrote.error().ToString().c_str());
    return 1;
  }
  PrintLatestTrace(facility, "agent write (write-through)");

  // Op 2: read it back cold — drop the agent cache first so the read has
  // to descend to the disk instead of stopping at the client cache.
  machine.file_agent->Crash();
  auto od2 = machine.file_agent->Open(naming::ByName("trace.txt"));
  if (!od2.ok()) {
    std::fprintf(stderr, "open failed: %s\n", od2.error().ToString().c_str());
    return 1;
  }
  std::vector<std::uint8_t> buffer(text.size());
  if (auto read = machine.file_agent->Pread(*od2, 0, buffer); !read.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 read.error().ToString().c_str());
    return 1;
  }
  PrintLatestTrace(facility, "agent read (cold cache)");

  // Op 3: a replicated write-all — one client operation fanning out to
  // three replicas on three disks.
  auto group = facility.replication().CreateReplicated(
      file::ServiceType::kBasic, /*replica_count=*/3);
  if (!group.ok()) {
    std::fprintf(stderr, "replica group failed: %s\n",
                 group.error().ToString().c_str());
    return 1;
  }
  auto rep = facility.replication().Write(
      *group, 0,
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
  if (!rep.ok()) {
    std::fprintf(stderr, "replicated write failed: %s\n",
                 rep.error().ToString().c_str());
    return 1;
  }
  PrintLatestTrace(facility, "replicated write (write-all, 3 replicas)");

  if (dump_json) {
    std::printf("%s\n", facility.DumpStats(/*json=*/true).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schema") == 0) {
      // The catalogue is fixed at construction; an empty facility carries
      // the complete name set.
      core::DistributedFileFacility facility;
      for (const auto& [name, kind] : facility.StatsSnapshot().Names()) {
        std::printf("%s %s\n", name.c_str(), kind.c_str());
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      dump_json = true;
      continue;
    }
    std::fprintf(stderr, "usage: %s [--schema] [--json]\n", argv[0]);
    return 2;
  }
  return RunWorkload(dump_json);
}
