// Bank ledger: concurrent money transfers through the RHODOS transaction
// service (paper §6).
//
// N worker threads move money between accounts stored in one transaction
// file with record-level locking. Every transfer is a transaction: tbegin,
// tread (for update), twrite x2, tend. The 2PL lock manager serializes
// conflicting transfers; the LT/N*LT timeout rule resolves deadlocks by
// aborting a victim, whose transfer simply retries.
//
// The invariant — total money is conserved — holds at the end despite
// conflicts, aborts and retries.
//
// Build & run:  ./build/examples/bank_ledger
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "core/facility.h"

using namespace rhodos;

namespace {

constexpr int kAccounts = 16;
constexpr std::int64_t kInitialBalance = 1000;
constexpr int kWorkers = 4;
constexpr int kTransfersPerWorker = 50;

std::uint64_t AccountOffset(int account) { return account * 8; }

std::int64_t DecodeBalance(const std::uint8_t* p) {
  std::int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void EncodeBalance(std::int64_t v, std::uint8_t* p) {
  std::memcpy(p, &v, 8);
}

}  // namespace

int main() {
  core::FacilityConfig config;
  config.disk_count = 1;
  config.geometry.total_fragments = 16 * 1024;
  config.txn.lock_timeout.lt = std::chrono::milliseconds(10);
  config.txn.lock_timeout.n = 4;
  core::DistributedFileFacility facility(config);
  core::Machine& m = facility.AddMachine();
  auto process = facility.CreateProcess();

  // Set up the ledger: one transaction file, record-level locking so
  // transfers touching different accounts run fully in parallel (§6.1).
  {
    auto t = m.txn_agent->TBegin(process);
    auto od = m.txn_agent->TCreate(*t, naming::ByName("ledger"),
                                   file::LockLevel::kRecord, 0);
    std::vector<std::uint8_t> init(kAccounts * 8);
    for (int a = 0; a < kAccounts; ++a) {
      EncodeBalance(kInitialBalance, init.data() + AccountOffset(a));
    }
    m.txn_agent->TPwrite(*t, *od, 0, init);
    if (auto st = m.txn_agent->TEnd(*t, process); !st.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   st.error().ToString().c_str());
      return 1;
    }
  }
  const FileId ledger = *facility.naming().ResolveFile(
      naming::ByName("ledger"));

  std::atomic<int> committed{0}, aborted{0};
  auto& txns = facility.transactions();

  auto worker = [&](int id) {
    Rng rng(1000 + id);
    for (int i = 0; i < kTransfersPerWorker; ++i) {
      const int from = static_cast<int>(rng.Below(kAccounts));
      int to = static_cast<int>(rng.Below(kAccounts));
      if (to == from) to = (to + 1) % kAccounts;
      const std::int64_t amount = 1 + static_cast<std::int64_t>(
                                          rng.Below(20));
      // Retry the transfer until it commits.
      while (true) {
        auto t = txns.Begin(ProcessId{static_cast<std::uint64_t>(id)});
        std::uint8_t buf[8];
        auto ok = [&]() -> bool {
          // Read both balances with intent to update (Iread locks).
          if (!txns.TRead(*t, ledger, AccountOffset(from), buf,
                          txn::ReadIntent::kForUpdate)
                   .ok()) {
            return false;
          }
          const std::int64_t from_bal = DecodeBalance(buf);
          if (!txns.TRead(*t, ledger, AccountOffset(to), buf,
                          txn::ReadIntent::kForUpdate)
                   .ok()) {
            return false;
          }
          const std::int64_t to_bal = DecodeBalance(buf);
          // Write both back (IW conversion).
          EncodeBalance(from_bal - amount, buf);
          if (!txns.TWrite(*t, ledger, AccountOffset(from), buf).ok()) {
            return false;
          }
          EncodeBalance(to_bal + amount, buf);
          return txns.TWrite(*t, ledger, AccountOffset(to), buf).ok();
        }();
        if (ok && txns.End(*t).ok()) {
          ++committed;
          break;
        }
        if (txns.IsActive(*t)) (void)txns.Abort(*t);
        ++aborted;  // deadlock victim or conflict: retry
      }
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) threads.emplace_back(worker, w);
  for (auto& th : threads) th.join();

  // Audit: total money must be conserved.
  std::vector<std::uint8_t> final_state(kAccounts * 8);
  facility.files().Read(ledger, 0, final_state);
  std::int64_t total = 0;
  std::printf("final balances:");
  for (int a = 0; a < kAccounts; ++a) {
    const std::int64_t bal = DecodeBalance(final_state.data() +
                                           AccountOffset(a));
    total += bal;
    std::printf(" %lld", static_cast<long long>(bal));
  }
  std::printf("\n");
  const std::int64_t expected = kAccounts * kInitialBalance;
  std::printf("transfers committed: %d, aborted+retried: %d\n",
              committed.load(), aborted.load());
  std::printf("lock stats: %llu grants, %llu waits, %llu broken by "
              "timeout\n",
              static_cast<unsigned long long>(txns.locks().stats().grants),
              static_cast<unsigned long long>(txns.locks().stats().waits),
              static_cast<unsigned long long>(txns.locks().stats().breaks));
  std::printf("total = %lld (expected %lld) -> %s\n",
              static_cast<long long>(total),
              static_cast<long long>(expected),
              total == expected ? "CONSERVED" : "VIOLATED");
  return total == expected ? 0 : 1;
}
