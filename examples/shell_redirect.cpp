// Devices, standard streams and redirection (paper §3).
//
// A tiny "shell" session: a process writes to its stdout (the console
// device), then redirects stdout to a file — its environment variable
// flips to the fixed constant 100001 — and writes again; the text lands in
// the file. Finally a mediumweight twin inherits the parent's descriptors,
// and the twin refusal rule for transactional processes is demonstrated.
//
// Build & run:  ./build/examples/shell_redirect
#include <cstdio>
#include <cstring>
#include <string>

#include "core/facility.h"

using namespace rhodos;

namespace {

std::span<const std::uint8_t> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

int main() {
  core::DistributedFileFacility facility;
  core::Machine& m = facility.AddMachine();
  auto shell = facility.CreateProcess();

  std::printf("stdout variable = %lld (console)\n",
              static_cast<long long>(shell.stdout_fd()));

  // echo to the console
  facility.WriteStream(m, shell, shell.stdout_fd(),
                       AsBytes("shell$ hello on the console\n"));

  // shell$ echo "into the log" > session.log
  auto log_od = m.file_agent->Create(naming::ByName("session.log"),
                                     file::ServiceType::kBasic);
  if (!log_od.ok()) return 1;
  shell.RedirectStdout(*log_od);
  std::printf("after redirection stdout variable = %lld (the fixed "
              "constant for redirected stdout)\n",
              static_cast<long long>(shell.stdout_fd()));
  facility.WriteStream(m, shell, shell.stdout_fd(),
                       AsBytes("this line went to session.log"));
  m.file_agent->Flush(*log_od);

  // Show both sinks.
  auto console = m.device_agent->OutputOf("console");
  std::printf("console device shows: %s",
              std::string(console->begin(), console->end()).c_str());
  auto check = m.file_agent->Open(naming::ByName("session.log"));
  std::vector<std::uint8_t> content(64);
  auto n = m.file_agent->Pread(*check, 0, content);
  std::printf("session.log contains: \"%s\"\n",
              std::string(content.begin(),
                          content.begin() + static_cast<long>(*n))
                  .c_str());

  // Mediumweight process-twin: the child inherits every descriptor.
  shell.AddDescriptor(*log_od);
  auto twin = shell.Twin(ProcessId{99});
  std::printf("twin created: inherits %zu descriptor(s), stdout variable "
              "= %lld\n",
              twin->descriptors().size(),
              static_cast<long long>(twin->stdout_fd()));

  // A process with a live transaction may NOT twin (§3: inherited
  // transaction descriptors would threaten serializability).
  auto t = m.txn_agent->TBegin(shell);
  auto refused = shell.Twin(ProcessId{100});
  std::printf("twin while a transaction is open: %s\n",
              refused.ok() ? "ALLOWED (bug!)"
                           : refused.error().ToString().c_str());
  m.txn_agent->TAbort(*t, shell);
  std::printf("after tabort the twin succeeds again: %s\n",
              shell.Twin(ProcessId{101}).ok() ? "yes" : "no");
  return 0;
}
